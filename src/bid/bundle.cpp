#include "bid/bundle.h"

#include <algorithm>
#include <cmath>
#include <sstream>

// Header-only use of the demand engine's kernel header: DotAscending is
// the one home of the ascending-pool multiply-add order every dot in the
// system shares (bundles here, the arena sweep in auction/demand_engine).
// No pm_auction symbols are referenced, so the bid library's link graph
// is unchanged.
#include "auction/kernels.h"
#include "common/check.h"

namespace pm::bid {

Bundle::Bundle(std::vector<BundleItem> items) : items_(std::move(items)) {
  for (const BundleItem& item : items_) {
    PM_CHECK_MSG(item.pool != kInvalidPool, "bundle item without a pool");
    PM_CHECK_MSG(std::isfinite(item.qty),
                 "non-finite quantity for pool " << item.pool);
  }
  std::sort(items_.begin(), items_.end(),
            [](const BundleItem& a, const BundleItem& b) {
              return a.pool < b.pool;
            });
  // Merge duplicates, drop zeros.
  std::vector<BundleItem> merged;
  merged.reserve(items_.size());
  for (const BundleItem& item : items_) {
    if (!merged.empty() && merged.back().pool == item.pool) {
      merged.back().qty += item.qty;
    } else {
      merged.push_back(item);
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const BundleItem& item) {
                                return item.qty == 0.0;
                              }),
               merged.end());
  items_ = std::move(merged);
}

double Bundle::QuantityOf(PoolId pool) const {
  const auto it = std::lower_bound(
      items_.begin(), items_.end(), pool,
      [](const BundleItem& item, PoolId p) { return item.pool < p; });
  if (it != items_.end() && it->pool == pool) return it->qty;
  return 0.0;
}

double Bundle::Dot(std::span<const double> prices) const {
  return auction::DotAscending(
      items_.size(),
      [&](std::size_t e) {
        PM_CHECK_MSG(items_[e].pool < prices.size(),
                     "bundle references pool "
                         << items_[e].pool << " beyond price vector of size "
                         << prices.size());
        return items_[e].pool;
      },
      [&](std::size_t e) { return items_[e].qty; }, prices.data());
}

PoolId Bundle::MinVectorSize() const {
  if (items_.empty()) return 0;
  return items_.back().pool + 1;  // Items are sorted by pool.
}

bool Bundle::IsPureBuy() const {
  return std::all_of(items_.begin(), items_.end(),
                     [](const BundleItem& item) { return item.qty >= 0.0; });
}

bool Bundle::IsPureSell() const {
  return std::all_of(items_.begin(), items_.end(),
                     [](const BundleItem& item) { return item.qty <= 0.0; });
}

Bundle operator+(const Bundle& a, const Bundle& b) {
  std::vector<BundleItem> items = a.items_;
  items.insert(items.end(), b.items_.begin(), b.items_.end());
  return Bundle(std::move(items));
}

Bundle operator-(const Bundle& a) {
  std::vector<BundleItem> items = a.items_;
  for (BundleItem& item : items) item.qty = -item.qty;
  return Bundle(std::move(items));
}

std::string Bundle::ToString(const PoolRegistry& registry) const {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) os << ", ";
    os << registry.NameOf(items_[i].pool) << ": " << items_[i].qty;
  }
  os << '}';
  return os.str();
}

void AccumulateInto(const Bundle& bundle, std::span<double> dense) {
  for (const BundleItem& item : bundle.items()) {
    PM_CHECK_MSG(item.pool < dense.size(),
                 "pool " << item.pool << " beyond dense vector of size "
                         << dense.size());
    dense[item.pool] += item.qty;
  }
}

}  // namespace pm::bid
