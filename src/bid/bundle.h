// planetmarket: resource bundles.
//
// A bundle is one R-component vector q from the paper's §II model: positive
// components are quantities demanded, negative components quantities
// offered. Bundles are stored sparsely — a team's bid touches a handful of
// (cluster, kind) pools out of potentially hundreds — which makes the
// proxies' argmin_q q·p scans (the clock auction's inner loop) O(nnz)
// instead of O(R).
#pragma once

#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"

namespace pm::bid {

/// One sparse component of a bundle.
struct BundleItem {
  PoolId pool = kInvalidPool;
  double qty = 0.0;  // > 0 demanded, < 0 offered.

  bool operator==(const BundleItem& other) const = default;
};

/// A sparse R-component resource vector in canonical form: items sorted by
/// pool id, pools unique, no zero quantities.
class Bundle {
 public:
  /// The empty bundle (the "nothing" outcome x_u = 0).
  Bundle() = default;

  /// Builds a canonical bundle from items in any order; duplicate pools are
  /// summed, zero results dropped.
  explicit Bundle(std::vector<BundleItem> items);

  Bundle(std::initializer_list<BundleItem> items)
      : Bundle(std::vector<BundleItem>(items)) {}

  /// Canonical sparse items, sorted by pool.
  const std::vector<BundleItem>& items() const { return items_; }

  bool Empty() const { return items_.empty(); }
  std::size_t Size() const { return items_.size(); }

  /// Quantity for `pool` (0 if absent).
  double QuantityOf(PoolId pool) const;

  /// Cost of the bundle at the given price vector: q·p. Every referenced
  /// pool must be < prices.size(). Negative cost means the bundle pays its
  /// holder (net sale).
  double Dot(std::span<const double> prices) const;

  /// Largest referenced pool id + 1 (0 for the empty bundle); callers use
  /// this to validate against the registry/price-vector size.
  PoolId MinVectorSize() const;

  /// True when every component is >= 0 (a "pure buy" bundle). The empty
  /// bundle is both pure-buy and pure-sell.
  bool IsPureBuy() const;

  /// True when every component is <= 0.
  bool IsPureSell() const;

  /// Component-wise sum (used by the AND combinator of the bid language).
  friend Bundle operator+(const Bundle& a, const Bundle& b);

  /// Component-wise negation (used to turn "offer" statements into signed
  /// quantities).
  friend Bundle operator-(const Bundle& a);

  bool operator==(const Bundle& other) const = default;

  /// Renders "{cpu@c1: 20, ram@c1: 40}" using the registry's pool names.
  std::string ToString(const PoolRegistry& registry) const;

 private:
  std::vector<BundleItem> items_;
};

/// Accumulates Σ_u x_u (the excess-demand sum) into a dense vector.
/// `dense` must have size >= bundle.MinVectorSize().
void AccumulateInto(const Bundle& bundle, std::span<double> dense);

}  // namespace pm::bid
