#include "bid/tbbl_ast.h"

#include <sstream>

#include "common/check.h"

namespace pm::bid {

std::unique_ptr<TbblNode> TbblNode::Leaf(ResourceKind resource,
                                         std::string cluster, double qty) {
  auto node = std::make_unique<TbblNode>();
  node->kind = TbblKind::kLeaf;
  node->resource = resource;
  node->cluster = std::move(cluster);
  node->qty = qty;
  return node;
}

std::unique_ptr<TbblNode> TbblNode::And(
    std::vector<std::unique_ptr<TbblNode>> children) {
  PM_CHECK_MSG(!children.empty(), "and{} needs at least one child");
  auto node = std::make_unique<TbblNode>();
  node->kind = TbblKind::kAnd;
  node->children = std::move(children);
  return node;
}

std::unique_ptr<TbblNode> TbblNode::Xor(
    std::vector<std::unique_ptr<TbblNode>> children) {
  PM_CHECK_MSG(!children.empty(), "xor{} needs at least one child");
  auto node = std::make_unique<TbblNode>();
  node->kind = TbblKind::kXor;
  node->children = std::move(children);
  return node;
}

std::size_t TbblNode::TreeSize() const {
  std::size_t size = 1;
  for (const auto& child : children) size += child->TreeSize();
  return size;
}

std::size_t TbblNode::CountAlternatives(std::size_t cap) const {
  PM_CHECK(cap >= 1);
  switch (kind) {
    case TbblKind::kLeaf:
      return 1;
    case TbblKind::kAnd: {
      std::size_t product = 1;
      for (const auto& child : children) {
        const std::size_t n = child->CountAlternatives(cap);
        if (product > cap / n) return cap;  // Saturate without overflow.
        product *= n;
      }
      return product;
    }
    case TbblKind::kXor: {
      std::size_t sum = 0;
      for (const auto& child : children) {
        sum += child->CountAlternatives(cap);
        if (sum >= cap) return cap;
      }
      return sum;
    }
  }
  return 1;
}

std::string TbblNode::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case TbblKind::kLeaf:
      os << pm::ToString(resource) << '@' << cluster << ": " << qty;
      break;
    case TbblKind::kAnd:
    case TbblKind::kXor:
      os << (kind == TbblKind::kAnd ? "and" : "xor") << " { ";
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (i > 0) os << ' ';
        os << children[i]->ToString();
      }
      os << " }";
      break;
  }
  return os.str();
}

}  // namespace pm::bid
