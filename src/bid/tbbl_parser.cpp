#include "bid/tbbl_parser.h"

#include <sstream>

#include "bid/tbbl_lexer.h"

namespace pm::bid {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(Tokenize(source)) {}

  ParseResult Run() {
    ParseResult result;
    if (Peek().kind == TokenKind::kError) {
      Fail(result, Peek().text);
      return result;
    }
    while (Peek().kind != TokenKind::kEnd) {
      if (Peek().kind != TokenKind::kKwBid &&
          Peek().kind != TokenKind::kKwOffer) {
        Fail(result, std::string("expected 'bid' or 'offer', found ") +
                         std::string(ToString(Peek().kind)));
        return result;
      }
      TbblStatement stmt;
      if (!ParseStatement(result, stmt)) return result;
      result.statements.push_back(std::move(stmt));
    }
    return result;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }

  const Token& Advance() { return tokens_[pos_++]; }

  bool Expect(ParseResult& result, TokenKind kind, const char* what) {
    if (Peek().kind != kind) {
      std::ostringstream os;
      os << "expected " << what << ", found " << ToString(Peek().kind);
      if (!Peek().text.empty() && Peek().kind != TokenKind::kEnd) {
        os << " '" << Peek().text << "'";
      }
      Fail(result, os.str());
      return false;
    }
    Advance();
    return true;
  }

  void Fail(ParseResult& result, std::string message) {
    result.errors.push_back(
        ParseError{std::move(message), Peek().line, Peek().column});
  }

  bool ParseStatement(ParseResult& result, TbblStatement& stmt) {
    stmt.is_offer = Peek().kind == TokenKind::kKwOffer;
    Advance();  // bid/offer keyword.
    if (Peek().kind != TokenKind::kString) {
      Fail(result, "expected quoted participant name");
      return false;
    }
    stmt.name = Advance().text;
    const TokenKind amount_kw =
        stmt.is_offer ? TokenKind::kKwMin : TokenKind::kKwLimit;
    if (!Expect(result, amount_kw, stmt.is_offer ? "'min'" : "'limit'")) {
      return false;
    }
    if (Peek().kind != TokenKind::kNumber) {
      Fail(result, "expected amount");
      return false;
    }
    stmt.amount = Advance().number;
    if (stmt.amount < 0.0) {
      --pos_;  // Point the diagnostic at the number itself.
      Fail(result,
           "amounts are written non-negative; direction comes from "
           "bid/offer");
      return false;
    }
    if (!Expect(result, TokenKind::kLBrace, "'{'")) return false;
    stmt.root = ParseNode(result);
    if (stmt.root == nullptr) return false;
    return Expect(result, TokenKind::kRBrace, "'}'");
  }

  std::unique_ptr<TbblNode> ParseNode(ParseResult& result) {
    if (Peek().kind == TokenKind::kKwXor ||
        Peek().kind == TokenKind::kKwAnd) {
      const bool is_xor = Peek().kind == TokenKind::kKwXor;
      Advance();
      if (!Expect(result, TokenKind::kLBrace, "'{'")) return nullptr;
      std::vector<std::unique_ptr<TbblNode>> children;
      while (Peek().kind != TokenKind::kRBrace) {
        if (Peek().kind == TokenKind::kEnd) {
          Fail(result, "unterminated node; expected '}'");
          return nullptr;
        }
        auto child = ParseNode(result);
        if (child == nullptr) return nullptr;
        children.push_back(std::move(child));
      }
      Advance();  // '}'
      if (children.empty()) {
        Fail(result, is_xor ? "xor{} needs at least one alternative"
                            : "and{} needs at least one part");
        return nullptr;
      }
      return is_xor ? TbblNode::Xor(std::move(children))
                    : TbblNode::And(std::move(children));
    }
    return ParseLeaf(result);
  }

  std::unique_ptr<TbblNode> ParseLeaf(ParseResult& result) {
    if (Peek().kind != TokenKind::kIdent) {
      Fail(result, std::string("expected resource leaf (kind@cluster: "
                               "qty), found ") +
                       std::string(ToString(Peek().kind)));
      return nullptr;
    }
    const Token kind_tok = Advance();
    const auto kind = ParseResourceKind(kind_tok.text);
    if (!kind.has_value()) {
      result.errors.push_back(ParseError{
          "unknown resource kind '" + kind_tok.text +
              "' (expected cpu, ram or disk)",
          kind_tok.line, kind_tok.column});
      return nullptr;
    }
    if (!Expect(result, TokenKind::kAt, "'@'")) return nullptr;
    if (Peek().kind != TokenKind::kIdent) {
      Fail(result, "expected cluster name after '@'");
      return nullptr;
    }
    const std::string cluster = Advance().text;
    if (!Expect(result, TokenKind::kColon, "':'")) return nullptr;
    if (Peek().kind != TokenKind::kNumber) {
      Fail(result, "expected quantity");
      return nullptr;
    }
    const Token qty_tok = Advance();
    if (qty_tok.number == 0.0) {
      result.errors.push_back(ParseError{"zero quantity has no effect",
                                         qty_tok.line, qty_tok.column});
      return nullptr;
    }
    return TbblNode::Leaf(*kind, cluster, qty_tok.number);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string ParseError::ToString() const {
  std::ostringstream os;
  os << line << ':' << column << ": " << message;
  return os.str();
}

ParseResult ParseTbbl(std::string_view source) {
  return Parser(source).Run();
}

}  // namespace pm::bid
