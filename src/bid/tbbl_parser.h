// planetmarket: recursive-descent parser for the bidding language.
//
// Grammar (commas are whitespace):
//
//   file  := stmt*
//   stmt  := "bid"   STRING "limit" NUMBER "{" node "}"
//          | "offer" STRING "min"   NUMBER "{" node "}"
//   node  := "xor" "{" node+ "}"
//          | "and" "{" node+ "}"
//          | leaf
//   leaf  := IDENT "@" IDENT ":" NUMBER        (kind @ cluster : qty)
//
// Resource kinds must be cpu/ram/disk. Errors carry 1-based line/column.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "bid/tbbl_ast.h"

namespace pm::bid {

/// A parse diagnostic at a source position.
struct ParseError {
  std::string message;
  int line = 0;
  int column = 0;

  /// "line:col: message"
  std::string ToString() const;
};

/// Result of parsing a bidding-language source file.
struct ParseResult {
  std::vector<TbblStatement> statements;
  std::vector<ParseError> errors;

  bool ok() const { return errors.empty(); }
};

/// Parses an entire source text. On error, parsing stops at the first
/// diagnostic (the language is simple enough that resynchronisation is not
/// worth imprecise follow-on errors).
ParseResult ParseTbbl(std::string_view source);

}  // namespace pm::bid
