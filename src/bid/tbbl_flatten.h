// planetmarket: flattening bid-language trees into indifference sets.
//
// The clock auction consumes the paper's flat representation
// Q_u = {q¹, q², …} (§II). Flattening expands a tree bottom-up:
//
//   leaf       → one single-item bundle
//   and {...}  → cartesian product of the children's alternative sets,
//                summing one pick per child
//   xor {...}  → union of the children's alternative sets
//
// An AND over XORs multiplies alternatives, so flattening is guarded by
// `max_bundles`; trees that would expand beyond it are rejected with a
// diagnostic instead of exhausting memory.
#pragma once

#include <string>
#include <vector>

#include "bid/bid.h"
#include "bid/tbbl_ast.h"
#include "bid/tbbl_parser.h"
#include "common/types.h"

namespace pm::bid {

/// Result of flattening one statement or file.
struct FlattenOutcome {
  std::vector<Bid> bids;
  std::string error;  // Empty on success.

  bool ok() const { return error.empty(); }
};

/// Expansion guard defaults: generous for hand-written bids, small enough
/// to stop adversarial AND-of-XOR towers.
inline constexpr std::size_t kDefaultMaxBundles = 4096;

/// Flattens a single tree into bundles. Pools are interned into `registry`
/// on first reference (the bid language can thus *define* the pool set of
/// a market). On failure returns an empty vector and sets `error`.
std::vector<Bundle> FlattenTree(const TbblNode& node, PoolRegistry& registry,
                                std::size_t max_bundles, std::string& error);

/// Converts one parsed statement into an auction bid:
///  - bid:   limit = +amount, quantities as written
///  - offer: limit = −amount, quantities negated
/// Duplicate bundles that arise from the expansion are deduplicated (they
/// are economically identical).
FlattenOutcome FlattenStatement(const TbblStatement& stmt,
                                PoolRegistry& registry,
                                std::size_t max_bundles = kDefaultMaxBundles);

/// Flattens a whole parse result; user ids are assigned in file order.
FlattenOutcome FlattenAll(const ParseResult& parsed, PoolRegistry& registry,
                          std::size_t max_bundles = kDefaultMaxBundles);

/// Convenience: parse + flatten. Parse errors are joined into `error`.
FlattenOutcome CompileBids(std::string_view source, PoolRegistry& registry,
                           std::size_t max_bundles = kDefaultMaxBundles);

}  // namespace pm::bid
