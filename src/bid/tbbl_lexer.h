// planetmarket: lexer for the tree-based bidding language.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pm::bid {

/// Token categories. Keywords are distinguished from identifiers so the
/// parser never has to re-compare strings.
enum class TokenKind {
  kIdent,    // cluster names, resource kinds
  kNumber,   // decimal literal, optional sign and fraction
  kString,   // double-quoted, supports \" and \\ escapes
  kLBrace,   // {
  kRBrace,   // }
  kColon,    // :
  kAt,       // @
  kKwBid,    // bid
  kKwOffer,  // offer
  kKwLimit,  // limit
  kKwMin,    // min
  kKwXor,    // xor
  kKwAnd,    // and
  kEnd,      // end of input
  kError,    // lexical error; text holds the message
};

std::string_view ToString(TokenKind kind);

/// One token with its source location (1-based line/column).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // Raw spelling (unescaped content for strings).
  double number = 0.0;  // Valid when kind == kNumber.
  int line = 1;
  int column = 1;
};

/// Tokenizes the whole input. '#' starts a comment running to end of line.
/// On a lexical error the stream contains a kError token at the offending
/// location followed by kEnd; the caller reports it and stops.
std::vector<Token> Tokenize(std::string_view source);

}  // namespace pm::bid
