// planetmarket: AST for the tree-based bidding language.
//
// §II: "users announce bids encapsulating their desired bundles and
// 'willingness to pay' criteria in a tree-based bidding language similar to
// TBBL". Our dialect has two combinators over leaves:
//
//   leaf         cpu@cluster3: 200        one pool, one quantity
//   and { ... }  all children together    (bundle composition)
//   xor { ... }  exactly one child        (indifference alternatives)
//
// Nested freely, e.g. "xor { and { xor {...} ... } ... }". Flattening
// (tbbl_flatten.h) expands a tree into the paper's flat indifference set
// Q_u = {q¹, q², …}.
//
// Statement forms:
//   bid   "name" limit <amount> { node }   π = +amount, quantities as written
//   offer "name" min   <amount> { node }   π = −amount, quantities negated
//                                          (an offer of 500 disk is written
//                                          positively and sold)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace pm::bid {

/// Node kinds of the bidding-language tree.
enum class TbblKind { kLeaf, kAnd, kXor };

/// One AST node. Leaves carry a pool reference and quantity; inner nodes
/// carry children.
struct TbblNode {
  TbblKind kind = TbblKind::kLeaf;

  // Leaf payload. The pool is kept symbolic (kind + cluster name) until
  // flattening, so a parsed file can be re-targeted at any registry.
  ResourceKind resource = ResourceKind::kCpu;
  std::string cluster;
  double qty = 0.0;

  // Inner-node payload.
  std::vector<std::unique_ptr<TbblNode>> children;

  static std::unique_ptr<TbblNode> Leaf(ResourceKind resource,
                                        std::string cluster, double qty);
  static std::unique_ptr<TbblNode> And(
      std::vector<std::unique_ptr<TbblNode>> children);
  static std::unique_ptr<TbblNode> Xor(
      std::vector<std::unique_ptr<TbblNode>> children);

  /// Number of nodes in this subtree (including this one).
  std::size_t TreeSize() const;

  /// Number of flat alternatives this subtree expands to (product over AND
  /// children, sum over XOR children, 1 for leaves), saturating at `cap`.
  /// Lets the flattener reject combinatorial explosions before expanding.
  std::size_t CountAlternatives(std::size_t cap) const;

  /// Re-renders the subtree in the language's concrete syntax.
  std::string ToString() const;
};

/// One parsed statement: a named bid or offer with its tree.
struct TbblStatement {
  bool is_offer = false;
  std::string name;
  double amount = 0.0;  // The written limit/min (always >= 0 in source).
  std::unique_ptr<TbblNode> root;
};

}  // namespace pm::bid
