// Planet-wide economy demo: treasury, cross-shard arbitrage, and fleet
// rebalancing over a federated exchange.
//
// Three regional market shards are generated with deliberately skewed
// utilization (one hot, two cool), so their congestion-weighted clearing
// prices start far apart. The economy layer then works on the gap from
// three directions at once:
//
//   * the treasury funds a planet-wide team from ONE currency pool:
//     per-shard allowances are pushed before every epoch and swept back
//     after it, so money is conserved modulo the explicit mints shown in
//     the treasury page;
//   * the arbitrage agent buys capacity where the previous epoch cleared
//     cheap and resells its warehouse where prices have risen;
//   * the rebalancer migrates a whole cluster from the coolest shard to
//     the hottest once the utilization gap has persisted two epochs.
//
//   $ ./federation_economy [epochs] [teams_per_shard]
#include <cstdlib>
#include <iostream>

#include "federation/federated_exchange.h"

int main(int argc, char** argv) {
  const int epochs = argc > 1 ? std::max(1, std::atoi(argv[1])) : 6;
  const int teams = argc > 2 ? std::max(4, std::atoi(argv[2])) : 24;

  std::vector<pm::federation::ShardSpec> specs;
  for (int k = 0; k < 3; ++k) {
    pm::federation::ShardSpec spec;
    spec.name = "region-" + std::to_string(k);
    spec.workload.num_teams = teams;
    spec.workload.num_clusters = 6;
    spec.workload.min_machines_per_cluster = 16;
    spec.workload.max_machines_per_cluster = 32;
    if (k == 0) {
      spec.workload.min_target_utilization = 0.80;
      spec.workload.max_target_utilization = 0.95;
    } else {
      spec.workload.min_target_utilization = 0.10;
      spec.workload.max_target_utilization = 0.30;
    }
    spec.market.auction.alpha = 0.4;
    spec.market.auction.delta = 0.08;
    specs.push_back(std::move(spec));
  }

  pm::federation::FederationConfig config;
  config.seed = 20090425;
  config.economy.treasury = true;
  config.economy.arbitrage.enabled = true;
  config.economy.arbitrage.margin = pm::Money::FromDollars(1000000);
  config.economy.arbitrage.min_spread = 0.05;
  config.economy.arbitrage.buy_fraction = 0.20;
  config.economy.rebalance.enabled = true;
  config.economy.rebalance.spread_threshold = 0.25;
  config.economy.rebalance.consecutive_epochs = 2;

  pm::federation::FederatedExchange fed(std::move(specs), config);

  // One planet-wide team, one planet-wide budget: the treasury mints
  // 3 × $400k and pushes/sweeps per-shard allowances each epoch.
  fed.EndowFederatedTeam("globex", pm::Money::FromDollars(400000));

  for (int e = 0; e < epochs; ++e) {
    for (int b = 0; b < 2; ++b) {
      pm::federation::FederatedBid bid;
      bid.team = "globex";
      bid.tag = "wave" + std::to_string(e) + "-" + std::to_string(b);
      bid.quantity = pm::cluster::TaskShape{24.0, 96.0, 3.0};
      bid.limit = 60000.0;
      fed.SubmitFederatedBid(bid);
    }
    const pm::federation::FederationReport report = fed.RunEpoch();
    std::cout << '\n' << RenderFederationSummary(report);
  }

  std::cout << '\n' << fed.treasury()->Render();
  std::cout << "arbitrage warehouse: "
            << fed.arbitrageur()->TotalHoldingsUnits()
            << " units, realized P&L $"
            << fed.arbitrageur()->RealizedPnl() << "\n";
  return 0;
}
