// Bidder-behaviour study (§V.B–C): what each strategy does to a market.
//
// Runs the same 12-cluster world four times with different team
// populations — all truthful; with premium-sticky teams; with
// opportunist movers; the full §V mix — and compares hot-cluster price
// premiums, migrations, and premium statistics after four auctions.
//
//   $ ./team_strategies
#include <cmath>
#include <iostream>

#include "agents/workload_gen.h"
#include "common/table.h"
#include "exchange/market.h"

namespace {

struct Scenario {
  const char* name;
  double frac_premium;
  double frac_mover;
  double frac_lowball;
  double frac_arb;
};

struct Outcome {
  double hot_ratio = 0.0;
  double migrations = 0.0;
  double median_gamma_first = 0.0;
  double median_gamma_last = 0.0;
  double spread_after = 0.0;
};

Outcome RunScenario(const Scenario& scenario) {
  pm::agents::WorkloadConfig workload;
  workload.num_clusters = 12;
  workload.num_teams = 48;
  workload.seed = 777;
  workload.frac_premium_sticky = scenario.frac_premium;
  workload.frac_opportunist_mover = scenario.frac_mover;
  workload.frac_lowball_seller = scenario.frac_lowball;
  workload.frac_arbitrageur = scenario.frac_arb;
  pm::agents::World world = GenerateWorld(workload);

  pm::exchange::MarketConfig config;
  config.auction.alpha = 0.4;
  config.auction.delta = 0.08;
  pm::exchange::Market market(&world.fleet, &world.agents,
                              world.fixed_prices, config);

  Outcome outcome;
  for (int a = 0; a < 4; ++a) {
    const pm::exchange::AuctionReport report = market.RunAuction();
    outcome.migrations += static_cast<double>(report.moves.size());
    if (a == 0) outcome.median_gamma_first = report.premium.median;
    outcome.median_gamma_last = report.premium.median;
    if (a == 0) {
      // Mean market/fixed ratio over the hot half of the pools.
      const std::vector<double> ratios =
          pm::exchange::PriceRatios(report);
      double sum = 0.0;
      int n = 0;
      for (std::size_t r = 0; r < ratios.size(); ++r) {
        if (report.pre_utilization[r] > 0.6 && !std::isnan(ratios[r])) {
          sum += ratios[r];
          ++n;
        }
      }
      outcome.hot_ratio = n > 0 ? sum / n : 0.0;
    }
  }
  outcome.spread_after = pm::exchange::UtilizationSpread(
      world.fleet.UtilizationVector());
  return outcome;
}

}  // namespace

int main() {
  const Scenario scenarios[] = {
      {"all truthful growers", 0.0, 0.0, 0.0, 0.0},
      {"+ premium-sticky teams", 0.35, 0.0, 0.0, 0.0},
      {"+ opportunist movers", 0.0, 0.45, 0.0, 0.0},
      {"paper mix (§V)", 0.15, 0.25, 0.10, 0.05},
  };
  std::cout << "=== Strategy populations and market outcomes ===\n\n";
  pm::TextTable table({"population", "hot-pool ratio (auction 1)",
                       "migrations (4 auctions)", "median gamma 1st",
                       "median gamma 4th", "util spread after (pp)"});
  for (const Scenario& s : scenarios) {
    const Outcome o = RunScenario(s);
    table.AddRow({s.name, pm::FormatF(o.hot_ratio, 3),
                  pm::FormatF(o.migrations, 0),
                  pm::FormatF(o.median_gamma_first, 4),
                  pm::FormatF(o.median_gamma_last, 4),
                  pm::FormatF(o.spread_after, 2)});
  }
  std::cout << table.Render() << '\n'
            << "reading: premium-sticky teams inflate congested-pool "
               "prices; movers turn price signals into migrations and "
               "flatten utilization; the paper mix does both while "
               "premiums decay as bidders learn\n";
  return 0;
}
