// Quickstart: one clock auction end to end.
//
// Builds a two-cluster market by hand, writes three bids in the
// TBBL-style bid language, runs the ascending clock auction with
// congestion-weighted reserve prices, and prints the uniform clearing
// prices, the winners and what they pay.
//
//   $ ./quickstart
#include <iostream>

#include "auction/clock_auction.h"
#include "auction/settlement.h"
#include "auction/system_check.h"
#include "bid/tbbl_flatten.h"
#include "common/table.h"
#include "reserve/weighting.h"

int main() {
  // --- 1. Bids, in the bid language (§II's {Q_u, π_u} model) ----------
  // web-frontend is locked to cluster "east"; batch-pipeline takes
  // whichever cluster clears cheaper; cold-storage vacates disk in east.
  const char* source = R"(
    bid "web-frontend" limit 4500 {
      and { cpu@east: 120  ram@east: 480 }
    }
    bid "batch-pipeline" limit 1800 {
      xor {
        and { cpu@east: 100  ram@east: 200 }
        and { cpu@west: 100  ram@west: 200 }
      }
    }
    bid "ml-training" limit 5200 {
      and { cpu@west: 550 }
    }
    offer "cold-storage" min 40 {
      disk@east: 300
    }
  )";
  pm::PoolRegistry registry;
  const pm::bid::FlattenOutcome compiled =
      pm::bid::CompileBids(source, registry);
  if (!compiled.ok()) {
    std::cerr << "bid compilation failed: " << compiled.error << '\n';
    return 1;
  }
  std::cout << "compiled " << compiled.bids.size() << " bids over "
            << registry.size() << " resource pools\n\n";

  // --- 2. Operator supply and congestion-weighted reserves (§IV) ------
  // east is congested (85% utilized), west is nearly idle (20%).
  std::vector<double> supply(registry.size(), 0.0);
  std::vector<double> utilization(registry.size(), 0.0);
  std::vector<double> cost(registry.size(), 0.0);
  for (pm::PoolId r = 0; r < registry.size(); ++r) {
    const pm::PoolKey& key = registry.KeyOf(r);
    const bool east = key.cluster == "east";
    utilization[r] = east ? 0.85 : 0.20;
    switch (key.kind) {
      case pm::ResourceKind::kCpu:
        supply[r] = east ? 150.0 : 600.0;
        cost[r] = 10.0;
        break;
      case pm::ResourceKind::kRam:
        supply[r] = east ? 500.0 : 2400.0;
        cost[r] = 1.5;
        break;
      case pm::ResourceKind::kDisk:
        supply[r] = east ? 0.0 : 900.0;  // East disk comes from sellers.
        cost[r] = 0.8;
        break;
    }
  }
  const auto phi = pm::reserve::MakeExp2Weighting();
  std::vector<double> reserve(registry.size());
  for (pm::PoolId r = 0; r < registry.size(); ++r) {
    reserve[r] = (*phi)(utilization[r]) * cost[r];  // Eq. (4).
  }

  // --- 3. Run Algorithm 1 ---------------------------------------------
  pm::auction::ClockAuction auction(compiled.bids, supply, reserve);
  pm::auction::ClockAuctionConfig config;
  config.alpha = 0.4;   // Step scale per 100% oversubscription.
  config.delta = 0.05;  // Per-round price cap (relative).
  const pm::auction::ClockAuctionResult result = auction.Run(config);
  std::cout << "clock auction " << (result.converged ? "converged" : "hit the round cap")
            << " after " << result.rounds << " rounds\n\n";

  // --- 4. Prices -------------------------------------------------------
  pm::TextTable prices({"pool", "reserve $/unit", "clearing $/unit"});
  for (pm::PoolId r = 0; r < registry.size(); ++r) {
    prices.AddRow({registry.NameOf(r), pm::FormatF(reserve[r], 3),
                   pm::FormatF(result.prices[r], 3)});
  }
  std::cout << prices.Render() << '\n';

  // --- 5. Settlement ----------------------------------------------------
  const pm::auction::Settlement settlement =
      pm::auction::Settle(auction, result);
  pm::TextTable awards({"team", "awarded bundle", "pays/receives"});
  for (const pm::auction::Award& award : settlement.awards) {
    const pm::bid::Bid& b = compiled.bids[award.user];
    awards.AddRow(
        {b.name,
         b.bundles[static_cast<std::size_t>(award.bundle_index)]
             .ToString(registry),
         (award.payment >= 0 ? "pays $" : "receives $") +
             pm::FormatF(std::abs(award.payment), 2)});
  }
  for (pm::UserId loser : settlement.losers) {
    awards.AddRow({compiled.bids[loser].name, "(nothing)", "-"});
  }
  std::cout << awards.Render() << '\n';

  // --- 6. Audit against the SYSTEM constraints (§III.B) ---------------
  const pm::auction::SystemCheckResult audit =
      pm::auction::CheckSystemConstraints(auction, result);
  std::cout << "SYSTEM feasibility audit: "
            << (audit.Feasible() ? "all constraints hold"
                                 : audit.ToString())
            << '\n';
  return audit.Feasible() ? 0 : 1;
}
