// Federated planet-wide market: many local markets, one exchange.
//
// Builds a federation of per-region market shards (each a full
// planetmarket world: fleet, teams, ledger, reserve pricer), funds a
// planet-wide team, and routes its demand across regions under different
// policies while the regional auctions clear concurrently. After each
// epoch the planet-wide summary page shows what an operator would read:
// per-shard clearing, routing/spill decisions, and fleet health across
// every pool on the planet.
//
//   $ ./federated_market [num_shards] [teams_per_shard] [epochs]
#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "federation/federated_exchange.h"

int main(int argc, char** argv) {
  const int num_shards = argc > 1 ? std::atoi(argv[1]) : 4;
  const int teams_per_shard = argc > 2 ? std::atoi(argv[2]) : 40;
  const int epochs = argc > 3 ? std::atoi(argv[3]) : 3;

  std::vector<pm::federation::ShardSpec> specs;
  for (int k = 0; k < num_shards; ++k) {
    pm::federation::ShardSpec spec;
    spec.name = "region-" + std::to_string(k);
    spec.workload.num_clusters = 8;
    spec.workload.num_teams = teams_per_shard;
    spec.workload.min_machines_per_cluster = 20;
    spec.workload.max_machines_per_cluster = 40;
    if (k == 0) {
      // globex's home region runs uniformly hot: congestion-weighted
      // reserves there will quote above the spill threshold, so its
      // demand migrates to the cooler regions.
      spec.workload.min_target_utilization = 0.88;
      spec.workload.max_target_utilization = 0.96;
    }
    spec.market.auction.alpha = 0.4;
    spec.market.auction.delta = 0.08;
    specs.push_back(std::move(spec));
  }

  pm::federation::FederationConfig config;
  config.seed = 20090425;
  config.num_threads = 4;
  config.router.policy = pm::federation::RoutingPolicy::kHomeAffinity;
  config.router.spill_threshold = 1.8;

  std::cout << "building " << num_shards << " market shards of "
            << teams_per_shard << " teams each...\n";
  pm::federation::FederatedExchange fed(std::move(specs), config);

  // A planet-wide team with budget in every regional market. Its home
  // region is deliberately the most congested-looking one so the spill
  // policy has something to do.
  fed.EndowFederatedTeam("globex", pm::Money::FromDollars(2000000));

  for (int e = 0; e < epochs; ++e) {
    // Each epoch globex asks for capacity near its home region; the
    // router spills it to cooler regions when home prices run hot.
    for (int b = 0; b < 3; ++b) {
      pm::federation::FederatedBid bid;
      bid.team = "globex";
      bid.tag = "wave" + std::to_string(e) + "-" + std::to_string(b);
      bid.quantity = pm::cluster::TaskShape{32.0, 128.0, 4.0};
      bid.limit = 80000.0;
      bid.home_shard = "region-0";
      fed.SubmitFederatedBid(bid);
    }
    const pm::federation::FederationReport report = fed.RunEpoch();
    std::cout << '\n' << RenderFederationSummary(report);
    for (const pm::federation::RouteDecision& decision : report.routing) {
      std::cout << "  " << decision.team << '/' << decision.tag << " ["
                << ToString(decision.policy) << "] -> ";
      if (decision.shards.empty()) {
        std::cout << "unroutable";
      } else {
        for (std::size_t s : decision.shards) {
          std::cout << fed.ShardName(s) << ' ';
        }
      }
      if (decision.spilled) {
        std::cout << "(spilled off " << fed.ShardName(
                         decision.preferred_shard)
                  << ", heat " << pm::FormatF(decision.preferred_heat, 2)
                  << ")";
      }
      std::cout << '\n';
    }
  }

  std::cout << "\nglobex budget left per region:\n";
  for (std::size_t k = 0; k < fed.NumShards(); ++k) {
    std::cout << "  " << fed.ShardName(k) << ": "
              << fed.ShardMarket(k).TeamBudget("globex") << '\n';
  }
  return 0;
}
