// The operator's week: the §V.A platform flow from the operator side.
//
//  1. open the bid-collection window on the simulation clock
//  2. teams file bids over three days; preliminary prices tick every
//     12 h on the front end (Figure 5's non-binding simulation loop)
//  3. the window closes; the final book runs as the binding clock
//     auction with congestion-weighted reserves
//  4. the operator reads the price signals and the capacity advice
//
//   $ ./operator_console
#include <iostream>

#include "agents/workload_gen.h"
#include "auction/settlement.h"
#include "common/table.h"
#include "exchange/bid_window.h"
#include "exchange/capacity_advice.h"
#include "exchange/market.h"
#include "exchange/summary.h"
#include "sim/event_queue.h"

int main() {
  pm::agents::WorkloadConfig workload;
  workload.num_clusters = 8;
  workload.num_teams = 24;
  workload.seed = 1234;
  pm::agents::World world = GenerateWorld(workload);

  pm::exchange::MarketConfig config;
  pm::exchange::Market market(&world.fleet, &world.agents,
                              world.fixed_prices, config);

  std::cout << RenderMarketSummary(market) << '\n';

  // --- 1-2. Bid window with preliminary ticks -------------------------
  pm::sim::EventQueue queue;
  pm::exchange::BidWindow window(
      queue, /*close_at=*/72.0, /*tick_period=*/12.0,
      [&market](std::vector<pm::bid::Bid> bids) {
        return market.ComputePreliminaryPrices(std::move(bids));
      });

  // Teams file bids at staggered times (here: their strategy output,
  // submitted manually so the window mechanics are visible).
  const std::vector<double> reserve = market.CurrentReservePrices();
  const std::vector<double> util = world.fleet.UtilizationVector();
  const std::vector<double> free_supply = world.fleet.FreeVector();
  std::size_t submitted = 0;
  for (std::size_t a = 0; a < world.agents.size(); ++a) {
    const pm::sim::SimTime at = 2.0 + static_cast<double>(a) * 2.5;
    if (at >= 70.0) break;
    queue.ScheduleAt(at, [&, a] {
      pm::agents::MarketView view;
      view.registry = &world.fleet.registry();
      view.reserve_prices = reserve;
      view.utilization = util;
      view.free_capacity = free_supply;
      view.budget = 1e9;  // Demo: windows, not budgets.
      for (pm::bid::Bid& b : world.agents[a].MakeBids(view)) {
        if (window.Submit(std::move(b))) ++submitted;
      }
    });
  }
  queue.RunUntil(72.0);

  std::cout << "bid window closed with " << submitted
            << " bids; preliminary price ticks published: "
            << window.Ticks().size() << '\n';
  pm::TextTable ticks({"t (h)", "bids in book", "mean prelim $/unit"});
  for (const pm::exchange::PreliminaryTick& tick : window.Ticks()) {
    double mean = 0.0;
    for (double p : tick.prices) mean += p;
    mean /= static_cast<double>(tick.prices.size());
    ticks.AddRow({pm::FormatF(tick.at, 0),
                  std::to_string(tick.bids_in_book),
                  pm::FormatF(mean, 3)});
  }
  std::cout << ticks.Render() << '\n';

  // --- 3. The binding auction on the final book -----------------------
  std::vector<pm::bid::Bid> final_bids = window.Close();
  if (final_bids.empty()) {
    std::cout << "no bids to settle\n";
    return 0;
  }
  pm::auction::ClockAuction auction(std::move(final_bids),
                                    world.fleet.FreeVector(), reserve);
  const pm::auction::ClockAuctionResult result =
      auction.Run(config.auction);
  const pm::auction::Settlement settlement =
      pm::auction::Settle(auction, result);
  std::cout << "binding auction: " << settlement.awards.size() << " of "
            << auction.NumUsers() << " bids settled in " << result.rounds
            << " rounds; operator revenue $"
            << pm::FormatF(settlement.operator_revenue, 2) << "\n\n";

  // --- 4. Decision support --------------------------------------------
  // Give the operator a synthetic history: the market's own auction on
  // live state (so advice has data to chew on).
  market.RunAuction();
  std::cout << "=== capacity advice ===\n"
            << RenderCapacityAdvice(
                   AdviseCapacity(market.History(),
                                  world.fleet.registry()),
                   world.fleet.registry());
  return 0;
}
