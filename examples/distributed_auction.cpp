// The Figure 1 price-update loop, run for real: an auctioneer thread and
// N bidder-proxy nodes exchanging serialized PriceAnnounce / DemandReply
// frames over channels, next to the serial engine for comparison.
//
//   $ ./distributed_auction [users] [proxy_nodes]
#include <cstdlib>
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "net/distributed_auction.h"

int main(int argc, char** argv) {
  const int users = argc > 1 ? std::atoi(argv[1]) : 80;
  const std::size_t nodes =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4;

  // A market of mostly buyers with a few sellers over 12 pools.
  pm::RandomStream rng(4242);
  constexpr int kPools = 12;
  std::vector<double> supply(kPools), reserve(kPools);
  for (int r = 0; r < kPools; ++r) {
    supply[static_cast<std::size_t>(r)] = rng.Uniform(20.0, 60.0);
    reserve[static_cast<std::size_t>(r)] = rng.Uniform(0.5, 3.0);
  }
  std::vector<pm::bid::Bid> bids;
  for (int u = 0; u < users; ++u) {
    pm::bid::Bid b;
    b.user = static_cast<pm::UserId>(u);
    b.name = "team-" + std::to_string(u);
    const bool seller = rng.Bernoulli(0.15);
    const auto pool = static_cast<pm::PoolId>(rng.UniformInt(0, kPools - 1));
    const double qty = rng.Uniform(1.0, 6.0) * (seller ? -1.0 : 1.0);
    b.bundles = {pm::bid::Bundle({pm::bid::BundleItem{pool, qty}})};
    b.limit = seller
                  ? -std::abs(qty) * reserve[pool] * rng.Uniform(0.3, 0.8)
                  : std::abs(qty) * reserve[pool] * rng.Uniform(1.2, 4.0);
    bids.push_back(std::move(b));
  }
  pm::bid::AssignUserIds(bids);
  pm::auction::ClockAuction auction(std::move(bids), std::move(supply),
                                    std::move(reserve));

  pm::auction::ClockAuctionConfig config;
  config.alpha = 0.4;
  config.delta = 0.08;

  std::cout << "running the clock serially..." << std::endl;
  const pm::auction::ClockAuctionResult serial = auction.Run(config);

  std::cout << "running the Figure 1 loop with " << nodes
            << " proxy nodes on threads..." << std::endl;
  pm::net::DistributedConfig dist;
  dist.num_proxy_nodes = nodes;
  dist.auction = config;
  const pm::net::DistributedResult distributed =
      RunDistributedAuction(auction, dist);

  pm::TextTable table({"metric", "serial", "distributed"});
  table.AddRow({"rounds", std::to_string(serial.rounds),
                std::to_string(distributed.result.rounds)});
  table.AddRow({"converged", serial.converged ? "yes" : "no",
                distributed.result.converged ? "yes" : "no"});
  table.AddRow({"demand evaluations",
                std::to_string(serial.demand_evaluations),
                std::to_string(distributed.result.demand_evaluations)});
  table.AddRow({"messages", "-",
                std::to_string(distributed.transport.messages_sent)});
  table.AddRow({"bytes on wire", "-",
                std::to_string(distributed.transport.bytes_sent)});
  table.AddRow({"decode failures", "-",
                std::to_string(distributed.transport.decode_failures)});
  std::cout << table.Render() << '\n';

  const bool identical = serial.prices == distributed.result.prices;
  std::cout << "price vectors are "
            << (identical ? "BIT-IDENTICAL" : "DIFFERENT — bug!")
            << " between the two engines\n";

  pm::TextTable prices({"pool", "clearing price"});
  for (std::size_t r = 0; r < serial.prices.size(); ++r) {
    prices.AddRow({"pool-" + std::to_string(r),
                   pm::FormatF(serial.prices[r], 4)});
  }
  std::cout << prices.Render();
  return identical ? 0 : 1;
}
