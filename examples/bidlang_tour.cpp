// A tour of the tree-based bidding language (§II's TBBL-style dialect):
// every construct, what it flattens to, and the diagnostics the compiler
// produces for malformed bids.
//
//   $ ./bidlang_tour
#include <iostream>

#include "bid/tbbl_flatten.h"
#include "common/table.h"

namespace {

void Show(const char* title, const char* source) {
  std::cout << "--- " << title << " ---\n" << source << "\n";
  pm::PoolRegistry registry;
  const pm::bid::FlattenOutcome out =
      pm::bid::CompileBids(source, registry);
  if (!out.ok()) {
    std::cout << "  => rejected: " << out.error << "\n\n";
    return;
  }
  for (const pm::bid::Bid& bid : out.bids) {
    std::cout << "  => " << bid.name << "  (limit "
              << pm::FormatF(bid.limit, 2) << ", "
              << pm::bid::ToString(pm::bid::ClassifyBid(bid)) << ", "
              << bid.bundles.size() << " alternative(s))\n";
    for (const pm::bid::Bundle& bundle : bid.bundles) {
      std::cout << "       " << bundle.ToString(registry) << '\n';
    }
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "=== Tree-based bidding language tour ===\n\n";

  Show("a leaf: one pool, one quantity",
       R"(bid "simple" limit 100 { cpu@c1: 10 })");

  Show("and{}: a co-located bundle (CPUs are useless without RAM, §II)",
       R"(bid "colocated" limit 500 {
  and { cpu@c1: 10  ram@c1: 40  disk@c1: 2 }
})");

  Show("xor{}: indifference between locations",
       R"(bid "either-site" limit 500 {
  xor {
    and { cpu@eu: 10 ram@eu: 40 }
    and { cpu@us: 10 ram@us: 40 }
  }
})");

  Show("nesting: fixed home base AND a flexible burst slice",
       R"(bid "hybrid" limit 900 {
  and {
    and { cpu@home: 20 ram@home: 80 }
    xor { cpu@east: 50  cpu@west: 50  cpu@asia: 50 }
  }
})");

  Show("offer: selling capacity back (min = least acceptable revenue)",
       R"(offer "downsizer" min 75 {
  and { cpu@home: 30 ram@home: 120 }
})");

  Show("negative leaves inside a bid: a trader swapping clusters",
       R"(bid "swap" limit 50 {
  and { cpu@old: -25  cpu@new: 25 }
})");

  std::cout << "=== diagnostics ===\n\n";

  Show("unknown resource kind",
       R"(bid "oops" limit 10 { gpu@c1: 4 })");

  Show("zero quantity",
       R"(bid "zero" limit 10 { cpu@c1: 0 })");

  Show("combinatorial explosion guard",
       R"(bid "explode" limit 10 { and {
  xor { cpu@a: 1 cpu@b: 1 } xor { cpu@a: 1 cpu@b: 1 }
  xor { cpu@a: 1 cpu@b: 1 } xor { cpu@a: 1 cpu@b: 1 }
  xor { cpu@a: 1 cpu@b: 1 } xor { cpu@a: 1 cpu@b: 1 }
  xor { cpu@a: 1 cpu@b: 1 } xor { cpu@a: 1 cpu@b: 1 }
  xor { cpu@a: 1 cpu@b: 1 } xor { cpu@a: 1 cpu@b: 1 }
  xor { cpu@a: 1 cpu@b: 1 } xor { cpu@a: 1 cpu@b: 1 }
  xor { cpu@a: 1 cpu@b: 1 }
} })");

  Show("missing brace", R"(bid "broken" limit 10 { xor { cpu@c1: 5 )");
  return 0;
}
