// Scenario CLI: run one named scenario and emit its metrics JSON.
//
//   $ ./example_scenario_runner --scenario shard-outage [--seed S]
//         [--epochs E] [--threads T] [--out FILE] [--quiet]
//   $ ./example_scenario_runner --list
//
// The JSON is byte-identical for identical (scenario, seed, epochs) —
// the determinism contract of docs/scenarios.md — so piping two runs
// through `diff` is a valid reproducibility check. Exit status: 0 on
// success (including runs too short for SLO evaluation), 1 when an
// evaluated SLO failed, 2 on usage errors.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "scenario/runner.h"
#include "scenario/scenario.h"

namespace {

int Usage() {
  std::cerr << "usage: example_scenario_runner --scenario NAME "
               "[--seed S] [--epochs E] [--threads T] [--out FILE] "
               "[--quiet]\n       example_scenario_runner --list\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string name;
  std::string out;
  pm::scenario::RunnerConfig config;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list") {
      for (const std::string& s : pm::scenario::ScenarioNames()) {
        const pm::scenario::ScenarioSpec& spec =
            pm::scenario::FindScenario(s);
        std::cout << s << " — " << spec.description << "\n";
      }
      return 0;
    } else if (arg == "--scenario") {
      const char* v = next();
      if (v == nullptr) return Usage();
      name = v;
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage();
      config.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--epochs") {
      const char* v = next();
      if (v == nullptr) return Usage();
      config.epochs = std::atoi(v);
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage();
      config.num_threads = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return Usage();
      out = v;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return Usage();
    }
  }
  if (name.empty()) return Usage();

  bool known = false;
  for (const std::string& s : pm::scenario::ScenarioNames()) {
    known = known || s == name;
  }
  if (!known) {
    std::cerr << "unknown scenario '" << name << "'; --list shows them\n";
    return 2;
  }

  pm::scenario::ScenarioRunner runner(pm::scenario::FindScenario(name),
                                      config);
  const pm::scenario::ScenarioMetrics metrics = runner.Run();
  const std::string json = metrics.ToJson();

  if (!out.empty()) {
    std::ofstream file(out);
    file << json;
    if (!quiet) std::cerr << "wrote " << out << "\n";
  } else {
    std::cout << json;
  }
  if (!quiet) {
    std::cerr << "scenario " << name << ": " << metrics.epochs
              << " epochs, refunds $" << metrics.refund_total
              << ", placement failures " << metrics.placement_failures
              << ", SLOs "
              << (metrics.slos_evaluated
                      ? (metrics.slo_pass ? "PASS" : "FAIL")
                      : "skipped (run too short)")
              << "\n";
    for (const pm::scenario::SloResult& slo : metrics.slos) {
      std::cerr << "  [" << (slo.pass ? "ok" : "FAIL") << "] " << slo.name
                << ": " << slo.detail << "\n";
    }
  }
  return metrics.slos_evaluated && !metrics.slo_pass ? 1 : 0;
}
