// Scenario CLI: run one named scenario and emit its metrics JSON.
//
//   $ ./example_scenario_runner --scenario shard-outage [--seed S]
//         [--epochs E] [--threads T] [--out FILE] [--quiet]
//         [--faults drop=P,dup=P,delay=N]
//         [--metrics-out FILE] [--trace-out FILE] [--prom-out FILE]
//         [--alerts-out FILE] [--console] [--timings]
//         [--profile] [--chrome-trace-out FILE]
//   $ ./example_scenario_runner --list
//
// --metrics-out / --trace-out / --prom-out arm the federation's
// telemetry plane and write its deterministic exports: the
// metrics-registry JSON document, the trace document (bid-lifecycle
// spans + retained flight-recorder dumps), and the Prometheus text
// exposition of the registry. --alerts-out and --console additionally
// arm the watchdog plane (recording rules + the default alert pack):
// the former writes the alert-timeline JSON, the latter renders the
// per-epoch operator console (per-shard health, clearing prices,
// spread, refund rate, firing alerts) to stdout after the run. All are
// byte-identical for identical (scenario, seed, epochs, faults) runs at
// any --threads. --timings additionally collects wall-clock epoch
// timings into the metrics document's separate timing block — that
// block is NOT deterministic, which is why it needs its own opt-in. An
// unwritable output path exits 2.
//
// --profile arms the profiler's deterministic work-accounting channel
// (fed_work_* counters in the metrics document; derived:work_* rules +
// drift alerts when the watchdog is also armed). --chrome-trace-out
// arms the wall-clock channel and writes a chrome://tracing JSON of the
// run (one track per shard plus the federation barrier track) — load it
// at chrome://tracing or ui.perfetto.dev. The wall channel never
// touches the deterministic documents (docs/observability.md).
//
// --faults runs every shard behind pm::net proxy nodes on a lossy wire
// (drop/duplicate probabilities, stale-redelivery window) with the epoch
// supervisor armed, overriding whatever the scenario configured. The
// retry layer makes the run bit-identical to its own reruns; retry
// exhaustion (a link going down for good) is a containment failure.
//
// The JSON is byte-identical for identical (scenario, seed, epochs,
// faults) — the determinism contract of docs/scenarios.md — so piping
// two runs through `diff` is a valid reproducibility check. Exit
// status: 0 on success (including runs too short for SLO evaluation),
// 1 when an evaluated SLO failed, 2 on usage errors, 3 when containment
// failed (an uncontained fault escaped the planet epoch).
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/check.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "telemetry/console.h"
#include "telemetry/telemetry.h"

namespace {

int Usage() {
  std::cerr << "usage: example_scenario_runner --scenario NAME "
               "[--seed S] [--epochs E] [--threads T] [--out FILE] "
               "[--quiet] [--faults drop=P,dup=P,delay=N] "
               "[--metrics-out FILE] [--trace-out FILE] "
               "[--prom-out FILE] [--alerts-out FILE] [--console] "
               "[--timings] [--profile] [--chrome-trace-out FILE]\n"
               "       example_scenario_runner --list\n";
  return 2;
}

/// Writes `content` to `path`; an unwritable path (missing directory,
/// permission, disk) exits 2 — the one artifact-sink policy every
/// --*-out flag shares. Echoes "wrote PATH" unless quiet.
void WriteFileOrExit(const std::string& path, const std::string& content,
                     bool quiet) {
  std::ofstream file(path);
  file << content;
  file.flush();
  if (!file.good()) {
    std::cerr << "cannot write " << path << "\n";
    std::exit(2);
  }
  if (!quiet) std::cerr << "wrote " << path << "\n";
}

/// Parses "drop=P,dup=P,delay=N" (any subset, any order) into a
/// FaultConfig; returns false on malformed input.
bool ParseFaults(const std::string& text, pm::net::FaultConfig& faults) {
  std::istringstream tokens(text);
  std::string token;
  while (std::getline(tokens, token, ',')) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (value.empty()) return false;
    if (key == "drop") {
      faults.drop = std::atof(value.c_str());
    } else if (key == "dup") {
      faults.duplicate = std::atof(value.c_str());
    } else if (key == "delay") {
      faults.delay_window = std::atoi(value.c_str());
    } else {
      return false;
    }
  }
  return faults.drop >= 0.0 && faults.drop < 1.0 &&
         faults.duplicate >= 0.0 && faults.duplicate <= 1.0 &&
         faults.delay_window >= 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string name;
  std::string out;
  std::string metrics_out;
  std::string trace_out;
  std::string prom_out;
  std::string alerts_out;
  std::string chrome_trace_out;
  pm::scenario::RunnerConfig config;
  pm::net::FaultConfig faults;
  bool quiet = false;
  bool timings = false;
  bool console = false;
  bool profile = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list") {
      for (const std::string& s : pm::scenario::ScenarioNames()) {
        const pm::scenario::ScenarioSpec& spec =
            pm::scenario::FindScenario(s);
        std::cout << s << " — " << spec.description << "\n";
      }
      return 0;
    } else if (arg == "--scenario") {
      const char* v = next();
      if (v == nullptr) return Usage();
      name = v;
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage();
      config.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--epochs") {
      const char* v = next();
      if (v == nullptr) return Usage();
      config.epochs = std::atoi(v);
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return Usage();
      config.num_threads = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return Usage();
      out = v;
    } else if (arg == "--faults") {
      const char* v = next();
      if (v == nullptr || !ParseFaults(v, faults)) return Usage();
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) return Usage();
      metrics_out = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (v == nullptr) return Usage();
      trace_out = v;
    } else if (arg == "--prom-out") {
      const char* v = next();
      if (v == nullptr) return Usage();
      prom_out = v;
    } else if (arg == "--alerts-out") {
      const char* v = next();
      if (v == nullptr) return Usage();
      alerts_out = v;
    } else if (arg == "--chrome-trace-out") {
      const char* v = next();
      if (v == nullptr) return Usage();
      chrome_trace_out = v;
    } else if (arg == "--console") {
      console = true;
    } else if (arg == "--timings") {
      timings = true;
    } else if (arg == "--profile") {
      profile = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      return Usage();
    }
  }
  if (name.empty()) return Usage();

  bool known = false;
  for (const std::string& s : pm::scenario::ScenarioNames()) {
    known = known || s == name;
  }
  if (!known) {
    std::cerr << "unknown scenario '" << name << "'; --list shows them\n";
    return 2;
  }

  pm::scenario::ScenarioSpec spec = pm::scenario::FindScenario(name);
  const bool want_watchdog = !alerts_out.empty() || console;
  const bool want_telemetry = !metrics_out.empty() ||
                              !trace_out.empty() || !prom_out.empty() ||
                              timings || want_watchdog || profile ||
                              !chrome_trace_out.empty();
  if (want_telemetry) {
    spec.federation.telemetry.enabled = true;
    spec.federation.telemetry.wall_clock_timings =
        spec.federation.telemetry.wall_clock_timings || timings;
  }
  if (want_watchdog) {
    spec.federation.telemetry.watchdog.recording_rules = true;
    spec.federation.telemetry.watchdog.alerts = true;
  }
  if (profile) {
    spec.federation.telemetry.profiler.work_accounting = true;
  }
  if (!chrome_trace_out.empty()) {
    spec.federation.telemetry.profiler.wall_clock = true;
  }
  if (faults.Enabled()) {
    // Lossy-wire mode: every shard clears through proxy nodes over the
    // faulty transport, with the supervisor armed so a link going down
    // for good is contained rather than fatal. The distributed path
    // needs intra-round bisection off (docs/distributed.md).
    spec.federation.wire_faults = faults;
    if (spec.federation.proxy_nodes_per_shard == 0) {
      spec.federation.proxy_nodes_per_shard = 2;
    }
    spec.federation.supervisor.enabled = true;
    for (pm::federation::ShardSpec& shard : spec.shards) {
      shard.market.auction.intra_round_bisection = false;
    }
  }

  pm::scenario::ScenarioRunner runner(std::move(spec), config);
  pm::scenario::ScenarioMetrics metrics;
  try {
    metrics = runner.Run();
  } catch (const pm::CheckFailure& e) {
    // An uncontained fault escaped the planet epoch — the supervisor
    // failed to hold the failure domain. Distinct exit code so harnesses
    // can tell containment failures from SLO failures.
    std::cerr << "containment failure: " << e.what() << "\n";
    return 3;
  }
  const std::string json = metrics.ToJson();

  if (!out.empty()) {
    WriteFileOrExit(out, json, quiet);
  } else {
    std::cout << json;
  }

  if (want_telemetry) {
    const pm::telemetry::Telemetry* telemetry =
        runner.exchange().telemetry();
    PM_CHECK(telemetry != nullptr);
    if (!metrics_out.empty()) {
      WriteFileOrExit(metrics_out, telemetry->MetricsJson(timings), quiet);
    }
    if (!trace_out.empty()) {
      WriteFileOrExit(trace_out, telemetry->TraceJson(), quiet);
    }
    if (!prom_out.empty()) {
      WriteFileOrExit(prom_out, telemetry->PrometheusText(), quiet);
    }
    if (!alerts_out.empty()) {
      WriteFileOrExit(alerts_out, telemetry->AlertTimelineJson(), quiet);
    }
    if (!chrome_trace_out.empty()) {
      PM_CHECK(telemetry->profiler() != nullptr);
      WriteFileOrExit(chrome_trace_out,
                      telemetry->profiler()->ChromeTraceJson(), quiet);
    }
    if (console) {
      std::cout << pm::telemetry::RenderConsole(*telemetry);
    }
  }
  if (!quiet) {
    std::cerr << "scenario " << name << ": " << metrics.epochs
              << " epochs, refunds $" << metrics.refund_total
              << ", placement failures " << metrics.placement_failures
              << ", SLOs "
              << (metrics.slos_evaluated
                      ? (metrics.slo_pass ? "PASS" : "FAIL")
                      : "skipped (run too short)")
              << "\n";
    for (const pm::scenario::SloResult& slo : metrics.slos) {
      std::cerr << "  [" << (slo.pass ? "ok" : "FAIL") << "] " << slo.name
                << ": " << slo.detail << "\n";
    }
  }
  return metrics.slos_evaluated && !metrics.slo_pass ? 1 : 0;
}
