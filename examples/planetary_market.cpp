// Planet-wide market: the paper's §V experiment end to end.
//
// Generates a 34-cluster fleet with ~100 engineering teams, then runs
// six weekly auctions on the simulation clock. After each auction it
// prints the market-summary page the trading front end shows (Figure 3)
// and a bid-entry preview (Figure 4); at the end, the price-ratio and
// premium statistics the paper reports.
//
//   $ ./planetary_market [num_clusters] [num_teams] [auctions]
#include <cstdlib>
#include <iostream>

#include "agents/workload_gen.h"
#include "common/table.h"
#include "exchange/capacity_advice.h"
#include "exchange/market.h"
#include "exchange/summary.h"
#include "sim/event_queue.h"
#include "sim/process.h"

int main(int argc, char** argv) {
  pm::agents::WorkloadConfig workload;
  workload.num_clusters = argc > 1 ? std::atoi(argv[1]) : 34;
  workload.num_teams = argc > 2 ? std::atoi(argv[2]) : 100;
  const int auctions = argc > 3 ? std::atoi(argv[3]) : 6;
  workload.seed = 20090425;

  std::cout << "generating a fleet of " << workload.num_clusters
            << " clusters and " << workload.num_teams
            << " engineering teams...\n";
  pm::agents::World world = GenerateWorld(workload);
  std::cout << "fleet CPU utilization "
            << pm::FormatPct(
                   world.fleet.FleetUtilization(pm::ResourceKind::kCpu),
                   1)
            << ", pools: " << world.fleet.NumPools() << "\n\n";

  pm::exchange::MarketConfig config;
  config.auction.alpha = 0.4;
  config.auction.delta = 0.08;
  pm::exchange::Market market(&world.fleet, &world.agents,
                              world.fixed_prices, config);

  // Pre-market summary (reserve prices only).
  std::cout << RenderMarketSummary(market) << '\n';

  // Weekly auctions on the simulation clock.
  pm::sim::EventQueue queue;
  pm::sim::PeriodicProcess weekly(
      queue, 168.0, 168.0, [&](int tick) {
        const pm::exchange::AuctionReport report = market.RunAuction();
        std::cout << "week " << (tick + 1) << ": auction #"
                  << (report.auction_index + 1) << " settled "
                  << report.num_winners << "/" << report.num_bids
                  << " bids in " << report.rounds << " rounds; "
                  << report.moves.size() << " migrations, operator "
                  << (report.operator_revenue >= 0 ? "revenue $"
                                                   : "outlay $")
                  << pm::FormatF(std::abs(report.operator_revenue), 2)
                  << '\n';
        return tick + 1 < auctions;
      });
  queue.RunAll();

  std::cout << '\n' << RenderMarketSummary(market) << '\n';

  // Figure 4's bid-entry preview for a sample requirement.
  std::cout << RenderBidPreview(
                   market, world.fleet.ClusterNames().front(),
                   pm::cluster::TaskShape{50.0, 200.0, 10.0})
            << '\n';

  // Longitudinal premium statistics (Table I's columns).
  pm::TextTable premiums(
      {"auction", "median gamma", "mean gamma", "% settled"});
  for (const pm::exchange::AuctionReport& report : market.History()) {
    premiums.AddRow({std::to_string(report.auction_index + 1),
                     pm::FormatF(report.premium.median, 4),
                     pm::FormatF(report.premium.mean, 4),
                     pm::FormatPct(report.settled_fraction, 1)});
  }
  std::cout << premiums.Render() << '\n';

  // What the operator should do next (§III.A shortage signaling).
  std::cout << "=== capacity advice from the price history ===\n"
            << RenderCapacityAdvice(
                   AdviseCapacity(market.History(),
                                  world.fleet.registry()),
                   world.fleet.registry());
  return 0;
}
