#!/usr/bin/env bash
# The CI gate, runnable locally: configure + build, then the tier-1 test
# line from ROADMAP.md plus a one-round smoke of every bench binary so
# bench bit-rot is caught before it lands.
#
#   scripts/check.sh                    # full gate (tier-1 + bench smokes)
#   scripts/check.sh --quick            # skip tests labelled `slow`
#   scripts/check.sh --sanitize         # tier-1 under ASan/UBSan (preset
#                                       # asan-ubsan, build-sanitize/ tree)
#   scripts/check.sh --sanitize=thread  # tier-1 under TSan (preset tsan,
#                                       # build-tsan/ tree) — the
#                                       # concurrent shard-epoch gate
#
# Labels (defined in CMakeLists.txt): tier1 = every gtest suite,
# bench-smoke = tiny bench runs plus the 1-epoch scenario smokes
# (one ctest entry per registered scenario and one for the suite
# emitter), slow = anything over ~1 s.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

if [[ "${1:-}" == "--sanitize" ]]; then
  # A separate build tree so the sanitized objects never mix with the
  # release gate; any ASan/UBSan finding aborts its test (no recovery).
  cmake --preset asan-ubsan
  cmake --build build-sanitize -j
  ctest --test-dir build-sanitize --output-on-failure -L tier1 -j "${JOBS}"
  exit 0
fi

if [[ "${1:-}" == "--sanitize=thread" ]]; then
  # TSan in its own tree (TSan and ASan cannot share objects). Guards
  # the concurrent paths: ThreadPool shard epochs, proxy-node auction
  # wires, and the supervisor's containment joins.
  cmake --preset tsan
  cmake --build build-tsan -j
  ctest --test-dir build-tsan --output-on-failure -L tier1 -j "${JOBS}"
  exit 0
fi

QUICK=""
if [[ "${1:-}" == "--quick" ]]; then
  QUICK="-LE slow"
fi

cmake -B build -S .
cmake --build build -j

# Tier-1: the correctness gate (ROADMAP.md "Tier-1 verify"). An explicit
# job count: bare `ctest -j` needs CMake >= 3.29, newer than our minimum.
ctest --test-dir build --output-on-failure -L tier1 ${QUICK} -j "${JOBS}"

# Bench smokes: every bench binary must still run end to end.
ctest --test-dir build --output-on-failure -L bench-smoke ${QUICK}
