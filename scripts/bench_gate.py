#!/usr/bin/env python3
"""Perf-regression gate over the committed BENCH_*.json baselines.

Compares a freshly produced benchmark JSON document against one or more
committed baselines and fails (exit 1) when a deterministic work counter
drifts outside its tolerance band, when a boolean invariant the benchmark
guarantees (convergence, conservation, byte-identity gates) flipped to
false, or when a wall-clock metric regressed beyond its (deliberately
loose) band on a host whose timings are trustworthy.

Three metric classes, three levels of trust:

  signature   Size/shape facts (bidder counts, shard counts, epochs).
              Numeric comparison only makes sense between runs of the
              same size; when the fresh document's signature differs
              from a baseline's (e.g. a --smoke run gated against a
              full-size baseline), numeric checks against that baseline
              are SKIPPED, never failed. Boolean invariants still apply:
              a smoke run must converge too.
  invariant   must-be-true booleans. Checked on the fresh document
              alone — a baseline is not needed to know that
              `all_converged: false` is a failure.
  work        Deterministic work counters (auction rounds, settled
              drops, realized PnL). Tight bands: these are
              host-noise-immune by construction (the profiler's
              work-accounting channel is built on the same property),
              so real drift means the algorithm changed.
  wall        Wall-clock timings. Loose bands, and skipped entirely
              when either document carries a single-vCPU stamp
              (`invalid_on_single_vcpu` / `single_vcpu` guard paths) —
              a 1-vCPU container cannot produce comparable timings.

Usage:
  bench_gate.py --benchmark NAME --fresh FILE --baseline FILE
                [--baseline FILE2 ...] [--trajectory FILE] [--verbose]
  bench_gate.py --self-test

With several baselines, each signature-compatible baseline is gated
against; incompatible ones contribute only a skip note. If no baseline
is signature-compatible, the gate passes on invariants alone (noted in
the output) — the committed full-size baselines stay meaningful even
though CI re-measures at smoke size.

--trajectory appends a one-line record (benchmark, git_sha and
timestamp taken from inside the fresh document, verdict, counter
values) to a JSON-array file, building the perf trajectory CI uploads
as an artifact.

--self-test runs the gate against synthetic documents and verifies the
gate itself: a >=20% work-counter regression must fail, a within-band
fresh run must pass, and a flipped invariant must fail. Wired as a
tier-1 ctest so the gate cannot silently rot.

Exit codes: 0 gate passed, 1 regression or invariant failure,
2 usage / unreadable input.
"""

import argparse
import json
import sys

# --------------------------------------------------------------- specs --

# Per-benchmark comparison plan. Paths are dot-separated; a `[*]`
# segment fans out over a JSON array (fresh and baseline arrays are
# paired by index; a length mismatch is treated as a signature mismatch
# for that path, i.e. skipped with a note, because it means the two
# documents measured different sweeps).
SPECS = {
    "megascale": {
        "signature": [
            "metadata.smoke",
            "metadata.bidders",
            "metadata.shards",
            "metadata.epochs",
            "pipeline.shards",
            "pipeline.bidders_per_shard",
            "pipeline.epochs",
        ],
        "invariants": [
            "kernel_sweep[*].decisions_identical",
            "pipeline.off_matches_pre_pipeline_loop",
            "pipeline.on_matches_off",
            "megascale_epoch.all_converged",
            "megascale_epoch.conservation_ok",
            "megascale_epoch.metrics_reproducible",
        ],
        # auction_rounds is bit-deterministic for a fixed (size, seed,
        # kernel set); any drift at all is an algorithm change. The tiny
        # band only absorbs float printing.
        "work": [("megascale_epoch.auction_rounds", 1e-6)],
        "wall": [
            ("kernel_sweep[*].dot_ms", 0.5),
            ("pipeline.epoch_ms_serial", 0.5),
            ("pipeline.epoch_ms_pipelined", 0.5),
            ("megascale_epoch.epoch_ms", 0.5),
        ],
        "wall_guards": [
            "metadata.host.single_vcpu",
            "pipeline.section_meta.invalid_on_single_vcpu",
            "pipeline.section_meta.single_vcpu_host",
        ],
    },
    "federated_exchange": {
        "signature": [
            "metadata.total_bidders",
            "metadata.epochs_per_config",
            "sweeps[*].shards",
            "sweeps[*].bidders_per_shard",
        ],
        "invariants": ["sweeps[*].all_converged"],
        "work": [("sweeps[*].rounds_total", 1e-6)],
        "wall": [
            ("sweeps[*].epoch_ms_serial", 0.5),
            ("sweeps[*].epoch_ms_pooled", 0.5),
        ],
        "wall_guards": ["metadata.host.single_vcpu"],
    },
    "scenario_suite": {
        "signature": [
            "metadata.seed",
            "metadata.scenarios",
            "metadata.epochs_override",
        ],
        "invariants": ["all_slos_pass"],
        # Scenario outcomes are deterministic per (scenario, seed,
        # epochs); the per-run epoch counts double as a drift tripwire
        # on the registry of scenarios itself.
        "work": [("runs[*].metrics.epochs", 1e-6)],
        "wall": [("runs[*].wall_ms", 1.0)],
        "wall_guards": ["metadata.host.single_vcpu"],
    },
    "arbitrage_spread": {
        "signature": [
            "metadata.teams_per_shard",
            "metadata.epochs",
            "metadata.shards",
        ],
        "invariants": ["arbitrage_ends_tighter_than_baseline"],
        # Fully deterministic market outcomes; a loose-ish band absorbs
        # the 4-decimal rendering, nothing else.
        "work": [
            ("baseline_drop", 1e-3),
            ("arbitrage_drop", 1e-3),
            ("arbitrage_realized_pnl", 1e-3),
            ("arbitrage_non_widening_fraction", 1e-3),
        ],
        "wall": [],
        "wall_guards": [],
    },
}

# ---------------------------------------------------------- path walks --


def resolve(doc, path):
    """Returns [(concrete_path, value)] for a dotted path, fanning out
    over `[*]` array segments. Missing paths resolve to []."""
    results = [("", doc)]
    for segment in path.split("."):
        fanout = segment.endswith("[*]")
        key = segment[:-3] if fanout else segment
        next_results = []
        for prefix, node in results:
            if not isinstance(node, dict) or key not in node:
                continue
            value = node[key]
            label = f"{prefix}.{key}" if prefix else key
            if fanout:
                if not isinstance(value, list):
                    continue
                for i, item in enumerate(value):
                    next_results.append((f"{label}[{i}]", item))
            else:
                next_results.append((label, value))
        results = next_results
    return results


def resolve_one(doc, path):
    values = resolve(doc, path)
    return values[0][1] if len(values) == 1 else None


# ------------------------------------------------------------ the gate --


class Gate:
    def __init__(self, verbose):
        self.verbose = verbose
        self.failures = []
        self.notes = []
        self.checked = 0
        self.skipped = 0

    def fail(self, message):
        self.failures.append(message)
        print(f"FAIL: {message}")

    def note(self, message):
        self.notes.append(message)
        if self.verbose:
            print(f"note: {message}")

    def ok(self, message):
        self.checked += 1
        if self.verbose:
            print(f"ok:   {message}")

    def skip(self, message):
        self.skipped += 1
        self.note(f"skipped: {message}")


def signatures_match(spec, fresh, baseline):
    """True when every signature path has identical values (and fanout
    cardinality) in both documents."""
    for path in spec["signature"]:
        f = resolve(fresh, path)
        b = resolve(baseline, path)
        if [v for _, v in f] != [v for _, v in b]:
            return False, path
    return True, None


def check_invariants(spec, fresh, gate):
    for path in spec["invariants"]:
        entries = resolve(fresh, path)
        if not entries:
            gate.note(f"invariant path absent: {path}")
            continue
        for label, value in entries:
            if value is True:
                gate.ok(f"invariant {label}")
            else:
                gate.fail(f"invariant {label} is {value!r}, expected true")


def wall_guard_tripped(spec, doc):
    for path in spec["wall_guards"]:
        for label, value in resolve(doc, path):
            if value is True:
                return label
    return None


def compare_numeric(path, rel_tol, fresh, baseline, gate, kind):
    f_entries = resolve(fresh, path)
    b_entries = resolve(baseline, path)
    if not f_entries and not b_entries:
        gate.note(f"{kind} path absent in both documents: {path}")
        return
    if len(f_entries) != len(b_entries):
        gate.skip(
            f"{kind} {path}: cardinality {len(f_entries)} vs "
            f"{len(b_entries)} (different sweep shape)"
        )
        return
    for (label, f), (_, b) in zip(f_entries, b_entries):
        if not isinstance(f, (int, float)) or not isinstance(b, (int, float)):
            gate.skip(f"{kind} {label}: non-numeric value")
            continue
        denom = max(abs(b), 1e-9)
        rel = abs(f - b) / denom
        if rel > rel_tol:
            gate.fail(
                f"{kind} {label}: fresh {f} vs baseline {b} "
                f"(rel drift {rel:.3f} > band {rel_tol})"
            )
        else:
            gate.ok(f"{kind} {label}: {f} vs {b} (drift {rel:.4f})")


def run_gate(benchmark, fresh, baselines, verbose):
    spec = SPECS.get(benchmark)
    if spec is None:
        print(f"unknown benchmark '{benchmark}'; known: "
              f"{', '.join(sorted(SPECS))}", file=sys.stderr)
        return None
    gate = Gate(verbose)

    # Invariants hold regardless of baselines or size.
    check_invariants(spec, fresh, gate)

    compatible = 0
    for name, baseline in baselines:
        match, mismatch_path = signatures_match(spec, fresh, baseline)
        if not match:
            gate.skip(
                f"baseline {name}: signature mismatch at "
                f"{mismatch_path} — numeric comparisons not meaningful"
            )
            continue
        compatible += 1
        for path, tol in spec["work"]:
            compare_numeric(path, tol, fresh, baseline, gate, "work")
        guard = wall_guard_tripped(spec, fresh) or wall_guard_tripped(
            spec, baseline
        )
        if guard is not None:
            for path, _ in spec["wall"]:
                gate.skip(f"wall {path}: guard {guard} stamped")
        else:
            for path, tol in spec["wall"]:
                compare_numeric(path, tol, fresh, baseline, gate, "wall")
    if baselines and compatible == 0:
        gate.note(
            "no signature-compatible baseline; gated on invariants only"
        )
    return gate


def append_trajectory(path, benchmark, fresh, gate):
    try:
        with open(path) as f:
            trajectory = json.load(f)
        if not isinstance(trajectory, list):
            raise ValueError("trajectory file is not a JSON array")
    except FileNotFoundError:
        trajectory = []
    spec = SPECS[benchmark]
    counters = {}
    for work_path, _ in spec["work"]:
        for label, value in resolve(fresh, work_path):
            counters[label] = value
    record = {
        "benchmark": benchmark,
        # Provenance comes from inside the document: the bench binary
        # stamped its own git sha and UTC time at measurement.
        "git_sha": resolve_one(fresh, "metadata.host.git_sha"),
        "timestamp_utc": resolve_one(fresh, "metadata.host.timestamp_utc"),
        "verdict": "pass" if not gate.failures else "fail",
        "checks": gate.checked,
        "skips": gate.skipped,
        "failures": gate.failures,
        "work_counters": counters,
    }
    trajectory.append(record)
    with open(path, "w") as f:
        json.dump(trajectory, f, indent=2)
        f.write("\n")
    print(f"trajectory: appended to {path} ({len(trajectory)} records)")


# ------------------------------------------------------------ self-test --


def synthetic_megascale(rounds, converged, serial_ms):
    return {
        "benchmark": "megascale",
        "metadata": {
            "smoke": True,
            "bidders": 1000,
            "shards": 4,
            "epochs": 1,
            "host": {
                "single_vcpu": False,
                "git_sha": "selftest",
                "timestamp_utc": "selftest",
            },
        },
        "kernel_sweep": [
            {"kernel": "scalar", "dot_ms": 10.0,
             "decisions_identical": True},
            {"kernel": "avx2", "dot_ms": 4.0,
             "decisions_identical": True},
        ],
        "pipeline": {
            "section_meta": {"invalid_on_single_vcpu": False},
            "shards": 4,
            "bidders_per_shard": 100,
            "epochs": 2,
            "epoch_ms_serial": serial_ms,
            "epoch_ms_pipelined": serial_ms * 0.8,
            "off_matches_pre_pipeline_loop": True,
            "on_matches_off": True,
        },
        "megascale_epoch": {
            "epoch_ms": 100.0,
            "auction_rounds": rounds,
            "all_converged": converged,
            "conservation_ok": True,
            "metrics_reproducible": True,
        },
    }


def self_test():
    baseline = synthetic_megascale(rounds=1000, converged=True,
                                   serial_ms=100.0)
    cases = [
        # (description, fresh document, expect_pass)
        ("within-band run passes",
         synthetic_megascale(1000, True, 110.0), True),
        ("20% work-counter regression fails",
         synthetic_megascale(1200, True, 100.0), False),
        ("flipped invariant fails",
         synthetic_megascale(1000, False, 100.0), False),
        ("wall blowup beyond the loose band fails",
         synthetic_megascale(1000, True, 300.0), False),
    ]
    # A single-vCPU stamp must turn the wall blowup into a skip.
    stamped = synthetic_megascale(1000, True, 300.0)
    stamped["metadata"]["host"]["single_vcpu"] = True
    cases.append(("wall blowup under a single-vCPU stamp passes",
                  stamped, True))
    # A smoke-vs-full signature mismatch must skip numerics but still
    # enforce invariants.
    resized = synthetic_megascale(5000, True, 100.0)
    resized["metadata"]["bidders"] = 1000000
    cases.append(("signature mismatch skips numerics", resized, True))
    resized_bad = synthetic_megascale(5000, False, 100.0)
    resized_bad["metadata"]["bidders"] = 1000000
    cases.append(("signature mismatch still enforces invariants",
                  resized_bad, False))

    all_ok = True
    for description, fresh, expect_pass in cases:
        gate = run_gate("megascale", fresh, [("synthetic", baseline)],
                        verbose=False)
        passed = not gate.failures
        ok = passed == expect_pass
        all_ok = all_ok and ok
        print(f"self-test [{'ok' if ok else 'FAIL'}] {description} "
              f"(gate {'passed' if passed else 'failed'})")
    print(f"self-test: {'PASS' if all_ok else 'FAIL'}")
    return 0 if all_ok else 1


# ----------------------------------------------------------------- main --


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"cannot read {path}: {e}", file=sys.stderr)
        return None


def main():
    parser = argparse.ArgumentParser(
        description="perf-regression gate over BENCH_*.json documents"
    )
    parser.add_argument("--benchmark")
    parser.add_argument("--fresh")
    parser.add_argument("--baseline", action="append", default=[])
    parser.add_argument("--trajectory")
    parser.add_argument("--verbose", action="store_true")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.benchmark or not args.fresh or not args.baseline:
        parser.print_usage(sys.stderr)
        return 2

    fresh = load(args.fresh)
    if fresh is None:
        return 2
    baselines = []
    for path in args.baseline:
        doc = load(path)
        if doc is None:
            return 2
        baselines.append((path, doc))

    gate = run_gate(args.benchmark, fresh, baselines, args.verbose)
    if gate is None:
        return 2
    if args.trajectory:
        append_trajectory(args.trajectory, args.benchmark, fresh, gate)

    verdict = "PASS" if not gate.failures else "FAIL"
    print(
        f"bench_gate {args.benchmark}: {verdict} "
        f"({gate.checked} checks, {gate.skipped} skipped, "
        f"{len(gate.failures)} failures)"
    )
    return 0 if not gate.failures else 1


if __name__ == "__main__":
    sys.exit(main())
