// Tests for the planet-wide economy layer: federation treasury,
// cross-shard arbitrage, and fleet rebalancing.
//
// The load-bearing contract is money conservation: the planet's
// circulating supply (Σ team balances + Σ shard floats + Σ shard-net)
// equals TotalMinted − TotalBurned at every point of a multi-epoch
// federated run — including under arbitrage and cluster migration — and
// between epochs every shard float and every federated team's shard-local
// budget is exactly zero. Plus the migration determinism contract: two
// runs from the same seeds migrate the same clusters at the same epochs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bench_meta.h"
#include "common/check.h"
#include "exchange/endowment.h"
#include "federation/arbitrage.h"
#include "federation/economy.h"
#include "federation/federated_exchange.h"
#include "federation/rebalance.h"

namespace pm::federation {
namespace {

// ------------------------------------------------------------- fixtures --

agents::WorkloadConfig SmallWorkload(double util_lo = 0.10,
                                     double util_hi = 0.96) {
  agents::WorkloadConfig config;
  config.num_clusters = 4;
  config.num_teams = 12;
  config.min_machines_per_cluster = 10;
  config.max_machines_per_cluster = 20;
  config.min_target_utilization = util_lo;
  config.max_target_utilization = util_hi;
  return config;
}

exchange::MarketConfig FastMarket() {
  exchange::MarketConfig config;
  config.auction.alpha = 0.4;
  config.auction.delta = 0.08;
  config.auction.max_rounds = 30000;
  return config;
}

/// One hot shard and `cool` cool ones — the spread generator.
std::vector<ShardSpec> HotCoolShards(std::size_t cool = 1) {
  std::vector<ShardSpec> specs;
  ShardSpec hot;
  hot.name = "hot";
  hot.workload = SmallWorkload(0.78, 0.95);
  hot.market = FastMarket();
  specs.push_back(std::move(hot));
  for (std::size_t k = 0; k < cool; ++k) {
    ShardSpec spec;
    spec.name = "cool-" + std::to_string(k);
    spec.workload = SmallWorkload(0.08, 0.28);
    spec.market = FastMarket();
    specs.push_back(std::move(spec));
  }
  return specs;
}

void ExpectConserved(const FederationTreasury& treasury) {
  EXPECT_EQ(treasury.CirculatingSupply(),
            treasury.TotalMinted() - treasury.TotalBurned());
  EXPECT_EQ(treasury.ledger().TotalBalance(), Money());
}

// ------------------------------------------------------- treasury units --

TEST(FederationTreasuryTest, MintPushSweepConservesMoney) {
  FederationTreasury treasury({"a", "b"});
  treasury.Mint("globex", Money::FromDollars(1000), "seed");
  ExpectConserved(treasury);
  EXPECT_EQ(treasury.TotalMinted(), Money::FromDollars(1000));
  EXPECT_EQ(treasury.PlanetBalance("globex"), Money::FromDollars(1000));

  // Push 400 into shard 0; team keeps 600, float holds 400.
  const Money granted = treasury.PushAllowance(
      "globex", 0, Money::FromDollars(400), /*epoch=*/0);
  EXPECT_EQ(granted, Money::FromDollars(400));
  EXPECT_EQ(treasury.ShardFloat(0), Money::FromDollars(400));
  EXPECT_EQ(treasury.Outstanding("globex", 0), Money::FromDollars(400));
  ExpectConserved(treasury);

  // The shard reports 150 left: 150 returns, 250 was spent there.
  treasury.Sweep("globex", 0, Money::FromDollars(150), /*epoch=*/0);
  EXPECT_EQ(treasury.ShardFloat(0), Money());
  EXPECT_EQ(treasury.Outstanding("globex", 0), Money());
  EXPECT_EQ(treasury.PlanetBalance("globex"), Money::FromDollars(750));
  EXPECT_EQ(treasury.ShardNet(0), Money::FromDollars(250));
  ExpectConserved(treasury);
}

TEST(FederationTreasuryTest, SweepHandlesLocalEarnings) {
  FederationTreasury treasury({"solo", "other"});
  treasury.Mint("seller", Money::FromDollars(100), "seed");
  treasury.PushAllowance("seller", 0, Money::FromDollars(100), 0);
  // The team sold resources locally and ended the epoch with MORE than
  // its allowance: the extra is drawn from the shard's net account,
  // which goes negative (the shard operator was a net payer).
  treasury.Sweep("seller", 0, Money::FromDollars(130), 0);
  EXPECT_EQ(treasury.PlanetBalance("seller"), Money::FromDollars(130));
  EXPECT_EQ(treasury.ShardNet(0), -Money::FromDollars(30));
  EXPECT_EQ(treasury.ShardFloat(0), Money());
  ExpectConserved(treasury);
}

TEST(FederationTreasuryTest, AllowanceClampsToPlanetBalance) {
  FederationTreasury treasury({"a"});
  treasury.Mint("t", Money::FromDollars(50), "seed");
  EXPECT_EQ(treasury.PushAllowance("t", 0, Money::FromDollars(80), 0),
            Money::FromDollars(50));
  EXPECT_EQ(treasury.PushAllowance("t", 0, Money::FromDollars(80), 0),
            Money());
  ExpectConserved(treasury);
}

TEST(FederationTreasuryTest, BurnRetiresCurrencyExplicitly) {
  FederationTreasury treasury({"a"});
  treasury.Mint("t", Money::FromDollars(10), "seed");
  EXPECT_EQ(treasury.Burn("t", Money::FromDollars(25), "sunset"),
            Money::FromDollars(10));  // Clamped to the balance.
  EXPECT_EQ(treasury.CirculatingSupply(), Money());
  EXPECT_EQ(treasury.TotalBurned(), Money::FromDollars(10));
  ExpectConserved(treasury);
  // Every movement left an explicit record.
  ASSERT_EQ(treasury.Transfers().size(), 2u);
  EXPECT_EQ(treasury.Transfers()[0].kind, CrossShardTransfer::Kind::kMint);
  EXPECT_EQ(treasury.Transfers()[1].kind, CrossShardTransfer::Kind::kBurn);
}

TEST(SplitEvenlyTest, ConservesEveryMicro) {
  const Money total = Money::FromMicros(1000000007);  // Not divisible.
  const std::vector<Money> parts = exchange::SplitEvenly(total, 3);
  ASSERT_EQ(parts.size(), 3u);
  Money sum;
  for (const Money part : parts) sum += part;
  EXPECT_EQ(sum, total);
  EXPECT_LE(parts.front() - parts.back(), Money::FromMicros(1));
}

// --------------------------------------- conservation across a full run --

TEST(FederationEconomyTest, MoneyConservedAcrossMultiEpochRun) {
  FederationConfig config;
  config.seed = 20090425;
  config.economy.treasury = true;
  config.economy.arbitrage.enabled = true;
  config.economy.arbitrage.margin = Money::FromDollars(500000);
  config.economy.arbitrage.min_spread = 0.05;
  config.economy.arbitrage.buy_fraction = 0.20;
  config.economy.rebalance.enabled = true;
  config.economy.rebalance.spread_threshold = 0.20;
  config.economy.rebalance.consecutive_epochs = 2;
  FederatedExchange fed(HotCoolShards(/*cool=*/2), config);
  ASSERT_NE(fed.treasury(), nullptr);

  fed.EndowFederatedTeam("globex", Money::FromDollars(200000));
  fed.EndowFederatedTeam("initech", Money::FromDollars(50000));

  const FederationTreasury& treasury = *fed.treasury();
  const Money minted_after_endow = treasury.TotalMinted();
  // Planet-wide mints: 2 teams × shards, plus the arbitrage margin.
  EXPECT_EQ(minted_after_endow,
            Money::FromDollars(200000) * 3 + Money::FromDollars(50000) * 3 +
                Money::FromDollars(500000));

  bool any_migration = false;
  for (int e = 0; e < 5; ++e) {
    FederatedBid bid;
    bid.team = "globex";
    bid.tag = "wave" + std::to_string(e);
    bid.quantity = cluster::TaskShape{16.0, 64.0, 2.0};
    bid.limit = 30000.0;
    fed.SubmitFederatedBid(bid);
    const FederationReport report = fed.RunEpoch();
    any_migration = any_migration || !report.migrations.empty();

    // The conservation invariant, after every epoch's settlement sweep:
    // circulating supply equals net mints, floats are empty, and every
    // federated dollar is back on the planet ledger.
    ExpectConserved(treasury);
    EXPECT_EQ(treasury.TotalMinted(), minted_after_endow)
        << "no hidden mints during epochs";
    EXPECT_EQ(treasury.FloatTotal(), Money());
    for (const std::string& team : treasury.Teams()) {
      for (std::size_t k = 0; k < fed.NumShards(); ++k) {
        EXPECT_EQ(treasury.Outstanding(team, k), Money());
        EXPECT_EQ(fed.ShardMarket(k).TeamBudget(team), Money())
            << team << " still holds money in shard " << k;
      }
    }
    // Every shard's own double-entry ledger stays balanced too.
    for (std::size_t k = 0; k < fed.NumShards(); ++k) {
      EXPECT_EQ(fed.ShardMarket(k).ledger().TotalBalance(), Money());
    }
    // The snapshot in the report mirrors the treasury.
    EXPECT_TRUE(report.treasury.enabled);
    EXPECT_DOUBLE_EQ(report.treasury.minted,
                     treasury.TotalMinted().ToDouble());
  }
  // The hot/cool construction must actually have exercised rebalancing,
  // or the conservation claim above proved less than it says.
  EXPECT_TRUE(any_migration);
  // And arbitrage must have traded.
  ASSERT_NE(fed.arbitrageur(), nullptr);
  EXPECT_GT(fed.History().back().arbitrage.buys_planned +
                fed.History().back().arbitrage.sells_planned +
                fed.arbitrageur()->TotalHoldingsUnits(),
            0.0);
}

TEST(FederationEconomyTest, MoneyConservedWithMoveBillingOn) {
  // The bill_moves satellite: §V.B reconfiguration charges are ordinary
  // intra-shard transfers, so the planet conservation invariant must
  // keep holding — federated movers' bills surface as shard spend at
  // the sweep, never as hidden mints or burns.
  FederationConfig config;
  config.seed = 20090425;
  config.economy.treasury = true;
  std::vector<ShardSpec> shards = HotCoolShards(/*cool=*/1);
  for (ShardSpec& shard : shards) {
    shard.market.settlement.move_cost_weights =
        cluster::TaskShape{1.0, 0.05, 0.2};
    shard.market.settlement.bill_moves = true;
  }
  FederatedExchange fed(std::move(shards), config);
  ASSERT_NE(fed.treasury(), nullptr);
  fed.EndowFederatedTeam("globex", Money::FromDollars(500000));

  double billed = 0.0;
  for (int e = 0; e < 4; ++e) {
    FederatedBid bid;
    bid.team = "globex";
    bid.tag = "grow" + std::to_string(e);
    bid.quantity = cluster::TaskShape{16.0, 64.0, 2.0};
    bid.limit = 30000.0;
    fed.SubmitFederatedBid(bid);
    const FederationReport report = fed.RunEpoch();
    billed += report.move_billing_total;
    ExpectConserved(*fed.treasury());
    EXPECT_EQ(fed.treasury()->FloatTotal(), Money());
    for (std::size_t k = 0; k < fed.NumShards(); ++k) {
      EXPECT_EQ(fed.ShardMarket(k).ledger().TotalBalance(), Money());
    }
  }
  // The gate must actually have billed something, or this proved less
  // than it claims.
  EXPECT_GT(billed, 0.0);
}

TEST(FederationEconomyTest, RetireFederatedTeamBurnsRemainingMoney) {
  FederationConfig config;
  config.seed = 20090425;
  config.economy.treasury = true;
  FederatedExchange fed(HotCoolShards(/*cool=*/1), config);
  ASSERT_NE(fed.treasury(), nullptr);
  fed.EndowFederatedTeam("ephemeral", Money::FromDollars(1000));

  const Money burned_before = fed.treasury()->TotalBurned();
  const Money removed = fed.RetireFederatedTeam("ephemeral");
  EXPECT_EQ(removed, Money::FromDollars(2000));  // 2 shards × $1000.
  EXPECT_TRUE(fed.treasury()->PlanetBalance("ephemeral").IsZero());
  EXPECT_EQ(fed.treasury()->TotalBurned(), burned_before + removed);
  ExpectConserved(*fed.treasury());

  // Retired means retired: the next epoch pushes no allowance and the
  // ledger stays conserved.
  fed.RunEpoch();
  EXPECT_TRUE(fed.ShardMarket(0).TeamBudget("ephemeral").IsZero());
  ExpectConserved(*fed.treasury());

  // Unknown teams retire to zero, harmlessly.
  EXPECT_TRUE(fed.RetireFederatedTeam("never-existed").IsZero());
}

// ------------------------------------- outcome-aware conservation ------

// The ISSUE-4 acceptance property: with every outcome gate on (refunds,
// outcome-aware arbitrage warehouse, priced moves, drawdown stop, budget
// pressure, failure heat) and the shards running over the pm::net proxy
// wire path, every award's buy side conserves units —
// awarded == placed + refunded — and the treasury invariant keeps
// covering the refund flow (refunds land in the team's shard-local
// balance and are swept back to the planet ledger like any other
// dollar).
TEST(FederationEconomyTest, OutcomeConservationUnderFullEconomyAndProxyWire) {
  FederationConfig config;
  config.seed = 20090425;
  config.proxy_nodes_per_shard = 2;
  config.router.budget_pressure = 0.5;
  config.router.failure_heat_weight = 2.0;
  config.economy.treasury = true;
  config.economy.arbitrage.enabled = true;
  config.economy.arbitrage.margin = Money::FromDollars(500000);
  config.economy.arbitrage.min_spread = 0.05;
  config.economy.arbitrage.buy_fraction = 0.20;
  config.economy.arbitrage.outcome_aware = true;
  config.economy.arbitrage.drawdown_stop = 0.50;
  config.economy.rebalance.enabled = true;
  config.economy.rebalance.spread_threshold = 0.20;
  config.economy.rebalance.consecutive_epochs = 2;
  config.economy.rebalance.move_cost_weights =
      cluster::TaskShape{0.001, 0.001, 0.001};
  std::vector<ShardSpec> specs = HotCoolShards(/*cool=*/2);
  for (ShardSpec& spec : specs) {
    // Proxy compatibility (no intra-round bisection) + the refund gate.
    spec.market.auction.intra_round_bisection = false;
    spec.market.settlement.refund_unplaced = true;
    // No task splitting: large routed buys materialize as single tasks,
    // which guarantees some bin-packing failures to exercise the refund
    // path (pool-level supply still covers them).
    spec.market.max_task_shape = cluster::TaskShape{1e9, 1e9, 1e9};
  }
  FederatedExchange fed(std::move(specs), config);
  ASSERT_NE(fed.treasury(), nullptr);
  fed.EndowFederatedTeam("globex", Money::FromDollars(200000));

  const FederationTreasury& treasury = *fed.treasury();
  double cumulative_refunds = 0.0;
  std::size_t cumulative_failures = 0;
  double arb_placed_units = 0.0;
  for (int e = 0; e < 5; ++e) {
    FederatedBid bid;
    bid.team = "globex";
    bid.tag = "wave" + std::to_string(e);
    bid.quantity = cluster::TaskShape{60.0, 240.0, 8.0};
    bid.limit = 30000.0;
    fed.SubmitFederatedBid(bid);
    const FederationReport report = fed.RunEpoch();

    // Unit conservation, award by award and in aggregate.
    double awarded = 0.0, placed = 0.0, refunded = 0.0, refunds = 0.0;
    for (const ShardEpochSummary& shard : report.shards) {
      for (const exchange::AwardRecord& award : shard.report.awards) {
        const exchange::PlacementOutcome& outcome = award.outcome;
        if (outcome.quota_only) {
          EXPECT_DOUBLE_EQ(outcome.placed_units, outcome.awarded_units);
          continue;
        }
        EXPECT_NEAR(outcome.awarded_units,
                    outcome.placed_units + outcome.refunded_units, 1e-6)
            << award.bid_name;
        awarded += outcome.awarded_units;
        placed += outcome.placed_units;
        refunded += outcome.refunded_units;
        refunds += outcome.refund;
        if (award.team == config.economy.arbitrage.team) {
          arb_placed_units += outcome.placed_units;
        }
      }
    }
    EXPECT_NEAR(awarded, placed + refunded, 1e-6);
    EXPECT_NEAR(report.refund_total, refunds, 1e-9);
    cumulative_refunds += report.refund_total;
    cumulative_failures +=
        report.placement_failures + report.partial_placements;

    // The treasury invariant holds with refunds in the flow: floats
    // empty, local budgets (refunds included) swept back to the planet.
    ExpectConserved(treasury);
    EXPECT_EQ(treasury.FloatTotal(), Money());
    for (const std::string& team : treasury.Teams()) {
      for (std::size_t k = 0; k < fed.NumShards(); ++k) {
        EXPECT_EQ(fed.ShardMarket(k).TeamBudget(team), Money());
      }
    }
    for (std::size_t k = 0; k < fed.NumShards(); ++k) {
      EXPECT_EQ(fed.ShardMarket(k).ledger().TotalBalance(), Money());
    }
  }
  // The single-task fixture must actually have exercised the outcome
  // machinery, or the conservation above proved less than it says.
  EXPECT_GT(cumulative_failures, 0u);
  EXPECT_GT(cumulative_refunds, 0.0);
  // The outcome-aware warehouse is exact physical backing: sells only
  // shrink it, so it can never hold more than the buys that physically
  // placed — an invariant quota-backed accounting breaks whenever an
  // arbitrage buy fails bin-packing.
  ASSERT_NE(fed.arbitrageur(), nullptr);
  EXPECT_LE(fed.arbitrageur()->TotalHoldingsUnits(),
            arb_placed_units + 1e-6);
}

// --------------------------------------------------- disabled == PR 2 --

TEST(FederationEconomyTest, DisabledEconomyKeepsLegacyPathAndNullObjects) {
  FederationConfig config;
  config.seed = 777;
  FederatedExchange fed(HotCoolShards(), config);
  EXPECT_EQ(fed.treasury(), nullptr);
  EXPECT_EQ(fed.arbitrageur(), nullptr);
  EXPECT_EQ(fed.rebalancer(), nullptr);
  // Legacy endowment semantics: money minted in every local ledger.
  fed.EndowFederatedTeam("globex", Money::FromDollars(1000));
  for (std::size_t k = 0; k < fed.NumShards(); ++k) {
    EXPECT_EQ(fed.ShardMarket(k).TeamBudget("globex"),
              Money::FromDollars(1000));
  }
  const FederationReport report = fed.RunEpoch();
  EXPECT_FALSE(report.treasury.enabled);
  EXPECT_FALSE(report.arbitrage.enabled);
  EXPECT_TRUE(report.migrations.empty());
}

TEST(FederationEconomyTest, FederatedTeamMayNotShadowAResidentTeam) {
  FederationConfig config;
  config.economy.treasury = true;
  FederatedExchange fed(HotCoolShards(), config);
  // Workload-generated residents are named "team-%03d"; endowing a
  // federated team under that name would let the sweep confiscate the
  // resident's local budget every epoch.
  EXPECT_THROW(
      fed.EndowFederatedTeam("team-001", Money::FromDollars(1000)),
      CheckFailure);
  // A non-colliding name is accepted.
  fed.EndowFederatedTeam("globex", Money::FromDollars(1000));
  EXPECT_EQ(fed.treasury()->PlanetBalance("globex"),
            Money::FromDollars(1000) * 2);
}

TEST(FederationEconomyTest, ArbitrageRequiresTreasury) {
  FederationConfig config;
  config.economy.arbitrage.enabled = true;  // treasury left off.
  EXPECT_THROW(FederatedExchange(HotCoolShards(), config), CheckFailure);
}

// ------------------------------------------------------------ migration --

TEST(MarketMigrationTest, ExtractAdoptMovesClusterIntact) {
  agents::World source = GenerateWorld(SmallWorkload());
  agents::World dest = GenerateWorld(SmallWorkload());
  exchange::Market source_market(&source.fleet, &source.agents,
                                 source.fixed_prices, FastMarket());
  exchange::Market dest_market(&dest.fleet, &dest.agents,
                               dest.fixed_prices, FastMarket());

  const std::string victim = source.fleet.ClusterNames().front();
  const std::size_t source_clusters = source.fleet.NumClusters();
  const std::size_t dest_clusters = dest.fleet.NumClusters();
  const std::size_t dest_pools = dest.fleet.NumPools();
  const cluster::Cluster& before = source.fleet.ClusterByName(victim);
  const std::size_t moved_jobs = before.JobIds().size();
  const double moved_capacity = before.Capacity(ResourceKind::kCpu);
  ASSERT_GT(moved_jobs, 0u);

  cluster::Cluster moved = source_market.ExtractCluster(victim);
  EXPECT_EQ(source.fleet.NumClusters(), source_clusters - 1);
  EXPECT_FALSE(source.fleet.HasCluster(victim));
  // Pools survive extraction at zero capacity (PoolIds are stable).
  const auto pool =
      source.fleet.registry().Find(PoolKey{victim, ResourceKind::kCpu});
  ASSERT_TRUE(pool.has_value());
  EXPECT_EQ(source.fleet.CapacityVector()[*pool], 0.0);

  moved.SetName(victim + "@src");
  dest_market.AdoptCluster(std::move(moved));
  EXPECT_EQ(dest.fleet.NumClusters(), dest_clusters + 1);
  EXPECT_EQ(dest.fleet.NumPools(), dest_pools + kNumResourceKinds);
  const cluster::Cluster& adopted =
      dest.fleet.ClusterByName(victim + "@src");
  EXPECT_EQ(adopted.JobIds().size(), moved_jobs);
  EXPECT_EQ(adopted.Capacity(ResourceKind::kCpu), moved_capacity);
  // The market extended its per-pool state: fixed prices cover the new
  // pools and the adopted jobs' teams are charged quota there.
  EXPECT_EQ(dest_market.fixed_prices().size(), dest.fleet.NumPools());
  const cluster::Job* job = adopted.FindJob(adopted.JobIds().front());
  ASSERT_NE(job, nullptr);
  const auto adopted_pool = dest.fleet.registry().Find(
      PoolKey{victim + "@src", ResourceKind::kCpu});
  ASSERT_TRUE(adopted_pool.has_value());
  EXPECT_GT(dest_market.quota().UsageOf(job->team, *adopted_pool), 0.0);

  // Both markets keep auctioning without tripping any invariant (the
  // destination's agents learned beliefs for the new pools).
  EXPECT_NO_THROW(source_market.RunAuction());
  EXPECT_NO_THROW(dest_market.RunAuction());
  EXPECT_NO_THROW(source_market.RunAuction());
}

TEST(MarketMigrationTest, CannotExtractLastClusterAndQuotaSurvives) {
  agents::WorkloadConfig workload = SmallWorkload();
  workload.num_clusters = 2;
  agents::World world = GenerateWorld(workload);
  exchange::Market market(&world.fleet, &world.agents, world.fixed_prices,
                          FastMarket());
  market.ExtractCluster(world.fleet.ClusterNames().front());

  // The rejected extraction must not have refunded any quota first: a
  // caller recovering from the failure keeps a consistent table.
  const std::string last = world.fleet.ClusterNames().front();
  const cluster::Cluster& cl = world.fleet.ClusterByName(last);
  ASSERT_FALSE(cl.JobIds().empty());
  const cluster::Job* job = cl.FindJob(cl.JobIds().front());
  ASSERT_NE(job, nullptr);
  const auto pool =
      world.fleet.registry().Find(PoolKey{last, ResourceKind::kCpu});
  ASSERT_TRUE(pool.has_value());
  const double usage_before = market.quota().UsageOf(job->team, *pool);
  ASSERT_GT(usage_before, 0.0);

  EXPECT_THROW(market.ExtractCluster(last), CheckFailure);
  EXPECT_EQ(market.quota().UsageOf(job->team, *pool), usage_before);
}

TEST(FederationEconomyTest, RebalancingMigratesAndIsDeterministic) {
  const auto run = [] {
    FederationConfig config;
    config.seed = 20090425;
    config.economy.treasury = true;
    config.economy.rebalance.enabled = true;
    config.economy.rebalance.spread_threshold = 0.20;
    config.economy.rebalance.consecutive_epochs = 2;
    FederatedExchange fed(HotCoolShards(), config);
    std::vector<ClusterMigration> migrations;
    std::vector<std::size_t> cluster_counts;
    for (int e = 0; e < 4; ++e) {
      const FederationReport report = fed.RunEpoch();
      for (const ClusterMigration& m : report.migrations) {
        migrations.push_back(m);
      }
    }
    for (std::size_t k = 0; k < fed.NumShards(); ++k) {
      cluster_counts.push_back(fed.ShardWorld(k).fleet.NumClusters());
    }
    return std::make_pair(migrations, cluster_counts);
  };

  const auto [migrations_a, counts_a] = run();
  const auto [migrations_b, counts_b] = run();

  // The hot/cool gap must actually trigger (K = 2 ⇒ by epoch 2).
  ASSERT_FALSE(migrations_a.empty());
  // Capacity flows cool → hot, whole clusters at a time, conserved.
  std::size_t total = 0;
  for (const std::size_t count : counts_a) total += count;
  EXPECT_EQ(total, 2u * 4u);  // Two shards × four generated clusters.
  for (const ClusterMigration& m : migrations_a) {
    EXPECT_NE(m.from_shard, m.to_shard);
    EXPECT_GT(m.to_util, m.from_util);
  }
  // Determinism: identical runs migrate identical clusters.
  ASSERT_EQ(migrations_a.size(), migrations_b.size());
  for (std::size_t i = 0; i < migrations_a.size(); ++i) {
    EXPECT_EQ(migrations_a[i].cluster, migrations_b[i].cluster);
    EXPECT_EQ(migrations_a[i].adopted_name, migrations_b[i].adopted_name);
    EXPECT_EQ(migrations_a[i].from_shard, migrations_b[i].from_shard);
    EXPECT_EQ(migrations_a[i].to_shard, migrations_b[i].to_shard);
  }
  EXPECT_EQ(counts_a, counts_b);
}

TEST(FleetRebalancerTest, TieRankIsSeedStable) {
  const std::uint64_t a = FleetRebalancer::TieRank(1, 0, "r01");
  EXPECT_EQ(a, FleetRebalancer::TieRank(1, 0, "r01"));
  EXPECT_NE(a, FleetRebalancer::TieRank(2, 0, "r01"));
  EXPECT_NE(a, FleetRebalancer::TieRank(1, 1, "r01"));
  EXPECT_NE(a, FleetRebalancer::TieRank(1, 0, "r02"));
}

// ------------------------------------------------------------ arbitrage --

TEST(FederationEconomyTest, ArbitrageNarrowsClearingSpread) {
  const auto run = [](bool with_arbitrage) {
    FederationConfig config;
    config.seed = 20090425;
    if (with_arbitrage) {
      config.economy.treasury = true;
      config.economy.arbitrage.enabled = true;
      config.economy.arbitrage.margin = Money::FromDollars(1000000);
      config.economy.arbitrage.min_spread = 0.05;
      config.economy.arbitrage.min_margin = 0.05;
      config.economy.arbitrage.buy_fraction = 0.25;
    }
    FederatedExchange fed(HotCoolShards(), config);
    std::vector<double> spreads;
    for (int e = 0; e < 5; ++e) {
      spreads.push_back(fed.RunEpoch().clearing_spread);
    }
    return spreads;
  };
  const std::vector<double> baseline = run(false);
  const std::vector<double> with_arb = run(true);
  ASSERT_EQ(baseline.size(), with_arb.size());
  // Hot vs cool shards must open with a real price gap, and arbitrage
  // must end tighter than both its own start and the no-arbitrage run.
  EXPECT_GT(baseline.front(), 0.10);
  EXPECT_LT(with_arb.back(), with_arb.front());
  EXPECT_LT(with_arb.back(), baseline.back());
}

TEST(ArbitrageAgentTest, MigrationRehomesWarehouseEntries) {
  ArbitrageConfig config;
  config.enabled = true;
  ArbitrageAgent agent(config);
  // Shard 0 warehouses two pools; only pool 3's cluster migrates.
  agent.SeedHoldingsForTest(0, /*pool=*/3, /*units=*/100.0, /*basis=*/2.0);
  agent.SeedHoldingsForTest(0, /*pool=*/5, /*units=*/40.0, /*basis=*/1.0);
  // The receiving shard already holds some of the adopted pool: blended.
  agent.SeedHoldingsForTest(1, /*pool=*/7, /*units=*/100.0, /*basis=*/4.0);

  agent.OnClusterMigrated(/*from_shard=*/0, /*to_shard=*/1,
                          {{PoolId{3}, PoolId{7}}});
  // Pool 3's entry left the donor; pool 5's (different cluster) stayed.
  EXPECT_DOUBLE_EQ(agent.HoldingsUnits(0), 40.0);
  EXPECT_DOUBLE_EQ(agent.HoldingsUnits(1), 200.0);
  EXPECT_DOUBLE_EQ(agent.TotalHoldingsUnits(), 240.0);

  // Re-homing a pool with no warehouse entry is a no-op, and unknown
  // shards are tolerated (the agent may never have traded there).
  agent.OnClusterMigrated(0, 1, {{PoolId{9}, PoolId{11}}});
  agent.OnClusterMigrated(5, 1, {{PoolId{1}, PoolId{2}}});
  EXPECT_DOUBLE_EQ(agent.TotalHoldingsUnits(), 240.0);
}

TEST(ArbitrageAgentTest, UpdateRiskTracksPeakAndTripsTheStop) {
  ArbitrageConfig config;
  config.enabled = true;
  config.margin = Money::FromDollars(1000);
  config.drawdown_stop = 0.10;  // Halt past $100 under the peak.
  ArbitrageAgent agent(config);
  agent.UpdateRisk(0.0);
  EXPECT_FALSE(agent.Halted());
  agent.UpdateRisk(50.0);  // New peak.
  EXPECT_DOUBLE_EQ(agent.PeakEquity(), 50.0);
  EXPECT_FALSE(agent.Halted());
  agent.UpdateRisk(-49.0);  // Down 99 from the peak: still inside.
  EXPECT_FALSE(agent.Halted());
  agent.UpdateRisk(-51.0);  // Down 101: stop.
  EXPECT_TRUE(agent.Halted());
  agent.UpdateRisk(-45.0);  // Recovered inside the band: buys resume.
  EXPECT_FALSE(agent.Halted());

  // With the stop disabled the same path never halts.
  config.drawdown_stop = 0.0;
  ArbitrageAgent unguarded(config);
  unguarded.UpdateRisk(50.0);
  unguarded.UpdateRisk(-100000.0);
  EXPECT_FALSE(unguarded.Halted());
}

TEST(ArbitrageAgentTest, DrawdownStopHaltsBuysNotSells) {
  // Two fabricated shards with a clean 2x price spread: the healthy
  // agent buys in the cheap shard; the same agent marked deep under
  // water plans no buys.
  agents::World w0 = GenerateWorld(SmallWorkload());
  agents::World w1 = GenerateWorld(SmallWorkload());
  const std::vector<const cluster::Fleet*> fleets{&w0.fleet, &w1.fleet};
  const auto make_view = [](const agents::World& w, const char* name) {
    ShardView view;
    view.name = name;
    view.registry = &w.fleet.registry();
    view.reserve_prices.assign(w.fleet.NumPools(), 1.0);
    view.fixed_prices.assign(w.fleet.NumPools(), 1.0);
    view.free_capacity.assign(w.fleet.NumPools(), 100.0);
    return view;
  };
  const std::vector<ShardView> views{make_view(w0, "s0"),
                                     make_view(w1, "s1")};
  FederationReport prev;
  prev.shards.resize(2);
  prev.shards[0].report.settled_prices.assign(w0.fleet.NumPools(), 1.0);
  prev.shards[1].report.settled_prices.assign(w1.fleet.NumPools(), 2.0);

  ArbitrageConfig config;
  config.enabled = true;
  config.margin = Money::FromDollars(1000);
  config.min_spread = 0.05;
  config.drawdown_stop = 0.10;
  ArbitrageAgent agent(config);

  std::vector<ArbitragePlan> plans =
      agent.PlanEpoch(&prev, views, fleets, 1);
  EXPECT_FALSE(agent.Halted());
  bool any_buy = false;
  for (const ArbitragePlan& plan : plans) any_buy |= plan.is_buy;
  EXPECT_TRUE(any_buy) << "a 2x spread must attract buys when healthy";

  // A warehouse bought at basis 50 now marking at ~1: unrealized −490,
  // far past 10% of the $1000 margin.
  agent.SeedHoldingsForTest(0, /*pool=*/0, /*units=*/10.0, /*basis=*/50.0);
  plans = agent.PlanEpoch(&prev, views, fleets, 2);
  EXPECT_TRUE(agent.Halted());
  EXPECT_LT(agent.MarkToMarket(), -400.0);
  for (const ArbitragePlan& plan : plans) {
    EXPECT_FALSE(plan.is_buy) << "the stop must suppress new buys";
  }
}

TEST(ArbitrageAgentTest, SitsOutWithoutAPriceSignal) {
  ArbitrageConfig config;
  config.enabled = true;
  ArbitrageAgent agent(config);
  const std::vector<ArbitragePlan> plans =
      agent.PlanEpoch(nullptr, {}, {}, 0);
  EXPECT_TRUE(plans.empty());
  EXPECT_EQ(agent.TotalHoldingsUnits(), 0.0);
}

// --------------------------------------------------- pool-space growth --

TEST(PriceLearnerTest, ExtendBeliefsKeepsOldAndSeedsNew) {
  agents::PriceLearner learner({1.0, 2.0}, 0.5, 0.0, 1.0);
  learner.Observe(std::vector<double>{3.0, 4.0});
  const double belief0 = learner.Belief(0);
  learner.ExtendBeliefs(std::vector<double>{9.0, 9.0, 7.5});
  EXPECT_EQ(learner.NumPools(), 3u);
  EXPECT_EQ(learner.Belief(0), belief0);  // Existing beliefs untouched.
  EXPECT_EQ(learner.Belief(2), 7.5);      // New pool at the default.
  // Observing the enlarged price vector now works.
  learner.Observe(std::vector<double>{1.0, 1.0, 1.0});
  EXPECT_EQ(learner.NumPools(), 3u);
}

// ------------------------------------------------------- host metadata --

TEST(BenchMetaTest, HostMetadataIsMachineChecked) {
  const HostMetadata meta = CollectHostMetadata();
  // 0 cores means "unknown" and must not claim single-vCPU.
  EXPECT_EQ(meta.single_vcpu, meta.hardware_concurrency == 1);
  EXPECT_FALSE(meta.git_sha.empty());
  EXPECT_FALSE(meta.timestamp_utc.empty());
  const std::string json = HostMetadataJson(meta);
  EXPECT_NE(json.find("\"hardware_concurrency\""), std::string::npos);
  EXPECT_NE(json.find("\"single_vcpu\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(json.find("\"timestamp_utc\""), std::string::npos);
  // The caveat is derived from the measured core count, never
  // hand-written: present iff the host really is single-vCPU.
  EXPECT_EQ(json.find("\"caveat\"") != std::string::npos,
            meta.single_vcpu);
}

}  // namespace
}  // namespace pm::federation
