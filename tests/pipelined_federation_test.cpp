// Tests for FederationConfig::pipelined (federated_exchange.cpp's
// RunEpochs / RunEpochsPipelined): the overlap must be invisible —
// pipelined epochs byte-identical to the serial loop on every rendered
// report and on the telemetry plane's deterministic metrics JSON, across
// thread counts — and every config the barrier cannot overlap (epoch
// supervision, the economy, pending routed bids, wall-clock timings,
// fault injection) must fall back to the serial loop rather than
// diverge.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "federation/federated_exchange.h"
#include "federation/report.h"
#include "telemetry/telemetry.h"

namespace pm::federation {
namespace {

FederationConfig BaseConfig(bool pipelined, std::size_t num_threads) {
  FederationConfig config;
  config.seed = 20090425;
  config.num_threads = num_threads;
  config.pipelined = pipelined;
  config.telemetry.enabled = true;
  return config;
}

std::vector<ShardSpec> BaseShards(std::size_t shards, int teams) {
  std::vector<ShardSpec> specs;
  for (std::size_t k = 0; k < shards; ++k) {
    ShardSpec spec;
    spec.name = "shard-" + std::to_string(k);
    spec.workload.num_teams = teams;
    spec.workload.num_clusters = 4;
    spec.market.auction.alpha = 0.4;
    spec.market.auction.delta = 0.08;
    spec.market.auction.max_rounds = 30000;
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::string MetricsOf(const FederatedExchange& fed) {
  return fed.telemetry() != nullptr ? fed.telemetry()->MetricsJson() : "";
}

/// Every epoch's rendered report, concatenated: any divergence in any
/// epoch (prices, awards, spread, health) shows up as a string diff.
std::string RenderedHistory(const FederatedExchange& fed) {
  std::string out;
  for (const FederationReport& report : fed.History()) {
    out += RenderFederationSummary(report);
    out += '\n';
  }
  return out;
}

constexpr std::size_t kShards = 4;
constexpr int kTeams = 25;
constexpr int kEpochs = 3;

TEST(PipelinedFederation, MatchesSerialLoopByteForByte) {
  // The pre-PR path: one RunEpoch call per epoch, no pipeline.
  FederatedExchange loop(BaseShards(kShards, kTeams),
                         BaseConfig(false, 2));
  for (int e = 0; e < kEpochs; ++e) loop.RunEpoch();

  // RunEpochs with the gate off must be the same loop.
  FederatedExchange off(BaseShards(kShards, kTeams), BaseConfig(false, 2));
  off.RunEpochs(kEpochs);
  EXPECT_EQ(off.EpochCount(), kEpochs);
  EXPECT_EQ(RenderedHistory(off), RenderedHistory(loop));
  EXPECT_EQ(MetricsOf(off), MetricsOf(loop));

  // The pipelined overlap must be invisible in every output.
  FederatedExchange on(BaseShards(kShards, kTeams), BaseConfig(true, 2));
  on.RunEpochs(kEpochs);
  EXPECT_EQ(on.EpochCount(), kEpochs);
  EXPECT_EQ(RenderedHistory(on), RenderedHistory(loop));
  EXPECT_EQ(MetricsOf(on), MetricsOf(loop));
}

TEST(PipelinedFederation, IdenticalAcrossThreadCounts) {
  std::string first_history;
  std::string first_metrics;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{5}}) {
    FederatedExchange fed(BaseShards(kShards, kTeams),
                          BaseConfig(true, threads));
    fed.RunEpochs(kEpochs);
    if (first_history.empty()) {
      first_history = RenderedHistory(fed);
      first_metrics = MetricsOf(fed);
    } else {
      EXPECT_EQ(RenderedHistory(fed), first_history) << threads;
      EXPECT_EQ(MetricsOf(fed), first_metrics) << threads;
    }
  }
}

TEST(PipelinedFederation, ZeroAndSingleEpochCalls) {
  FederatedExchange fed(BaseShards(2, 10), BaseConfig(true, 2));
  fed.RunEpochs(0);
  EXPECT_EQ(fed.EpochCount(), 0);
  fed.RunEpochs(1);  // n == 1 has nothing to overlap: serial path.
  EXPECT_EQ(fed.EpochCount(), 1);
  fed.RunEpochs(2);
  EXPECT_EQ(fed.EpochCount(), 3);
}

TEST(PipelinedFederation, SupervisedConfigFallsBackToSerial) {
  FederationConfig supervised = BaseConfig(false, 2);
  supervised.supervisor.enabled = true;
  FederatedExchange loop(BaseShards(kShards, kTeams), supervised);
  for (int e = 0; e < kEpochs; ++e) loop.RunEpoch();

  FederationConfig pipelined = supervised;
  pipelined.pipelined = true;
  FederatedExchange fed(BaseShards(kShards, kTeams), pipelined);
  fed.RunEpochs(kEpochs);  // Must refuse to overlap checkpointed epochs.
  EXPECT_EQ(RenderedHistory(fed), RenderedHistory(loop));
  EXPECT_EQ(MetricsOf(fed), MetricsOf(loop));
}

TEST(PipelinedFederation, PendingFederatedBidsFallBackToSerial) {
  auto submit = [](FederatedExchange& fed) {
    fed.EndowFederatedTeam("global", Money::FromDollars(100000));
    FederatedBid bid;
    bid.team = "global";
    bid.tag = "t0";
    bid.quantity = cluster::TaskShape{4.0, 16.0, 1.0};
    bid.limit = 5000.0;
    fed.SubmitFederatedBid(bid);
  };
  FederatedExchange loop(BaseShards(kShards, kTeams),
                         BaseConfig(false, 2));
  submit(loop);
  for (int e = 0; e < kEpochs; ++e) loop.RunEpoch();

  FederatedExchange fed(BaseShards(kShards, kTeams), BaseConfig(true, 2));
  submit(fed);
  // A routing pass writes shard state at the epoch boundary; the whole
  // burst must run serially, not just the first epoch.
  fed.RunEpochs(kEpochs);
  EXPECT_EQ(RenderedHistory(fed), RenderedHistory(loop));
  EXPECT_EQ(MetricsOf(fed), MetricsOf(loop));
}

TEST(PipelinedFederation, InjectedFaultsFallBackAndPropagate) {
  // Unsupervised injected failure: the serial loop commits the epochs
  // before the failing one and throws. RunEpochs must do exactly that.
  FederatedExchange loop(BaseShards(kShards, kTeams),
                         BaseConfig(false, 2));
  loop.RunEpoch();
  loop.InjectShardFailure(1);
  EXPECT_THROW(loop.RunEpoch(), std::exception);
  const int committed = loop.EpochCount();

  FederatedExchange fed(BaseShards(kShards, kTeams), BaseConfig(true, 2));
  fed.RunEpochs(1);
  fed.InjectShardFailure(1);
  EXPECT_THROW(fed.RunEpochs(kEpochs), std::exception);
  EXPECT_EQ(fed.EpochCount(), committed);
  EXPECT_EQ(RenderedHistory(fed), RenderedHistory(loop));
}

TEST(PipelinedFederation, ResumesPipeliningAfterPendingDrains) {
  // Epoch 1 carries a routed bid (serial); later bursts with nothing
  // pending may overlap again — and must still match the serial loop.
  auto submit = [](FederatedExchange& fed) {
    fed.EndowFederatedTeam("global", Money::FromDollars(100000));
    FederatedBid bid;
    bid.team = "global";
    bid.tag = "t0";
    bid.quantity = cluster::TaskShape{4.0, 16.0, 1.0};
    bid.limit = 5000.0;
    fed.SubmitFederatedBid(bid);
  };
  FederatedExchange loop(BaseShards(kShards, kTeams),
                         BaseConfig(false, 2));
  submit(loop);
  for (int e = 0; e < 4; ++e) loop.RunEpoch();

  FederatedExchange fed(BaseShards(kShards, kTeams), BaseConfig(true, 2));
  submit(fed);
  fed.RunEpochs(1);   // Serial: a bid is pending.
  fed.RunEpochs(3);   // Pipelined: the queue drained with epoch 1.
  EXPECT_EQ(fed.EpochCount(), 4);
  EXPECT_EQ(RenderedHistory(fed), RenderedHistory(loop));
  EXPECT_EQ(MetricsOf(fed), MetricsOf(loop));
}

}  // namespace
}  // namespace pm::federation
