// Tests for pm::sim: event queue ordering, cancellation, periodic and
// Poisson processes.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "sim/event_queue.h"
#include "sim/process.h"

namespace pm::sim {
namespace {

TEST(EventQueueTest, DispatchesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(3.0, [&] { order.push_back(3); });
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.RunAll(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.Now(), 3.0);
}

TEST(EventQueueTest, EqualTimestampsRunFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(5.0, [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  double fired_at = -1.0;
  q.ScheduleAt(2.0, [&] {
    q.ScheduleAfter(1.5, [&] { fired_at = q.Now(); });
  });
  q.RunAll();
  EXPECT_DOUBLE_EQ(fired_at, 3.5);
}

TEST(EventQueueTest, SchedulingInThePastThrows) {
  EventQueue q;
  q.ScheduleAt(5.0, [] {});
  q.RunAll();
  EXPECT_THROW(q.ScheduleAt(1.0, [] {}), CheckFailure);
  EXPECT_THROW(q.ScheduleAfter(-1.0, [] {}), CheckFailure);
}

TEST(EventQueueTest, CancelPreventsDispatch) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.ScheduleAt(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_EQ(q.PendingCount(), 0u);
  q.RunAll();
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelAfterRunReturnsFalse) {
  EventQueue q;
  const EventId id = q.ScheduleAt(1.0, [] {});
  q.RunAll();
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.ScheduleAt(1.0, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(0));
  EXPECT_FALSE(q.Cancel(999));
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue q;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    q.ScheduleAt(t, [&fired, &q] { fired.push_back(q.Now()); });
  }
  EXPECT_EQ(q.RunUntil(2.5), 2u);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(q.Now(), 2.5);
  EXPECT_EQ(q.PendingCount(), 2u);
}

TEST(EventQueueTest, RunUntilIncludesBoundaryEvents) {
  EventQueue q;
  int count = 0;
  q.ScheduleAt(2.0, [&] { ++count; });
  q.RunUntil(2.0);
  EXPECT_EQ(count, 1);
}

TEST(EventQueueTest, ScheduleAtEpochInterleavesWithEpochLoop) {
  // The scenario runner's shape: epoch-e events run when the loop calls
  // RunUntil(e), before epoch e's auctions, FIFO among equals.
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAtEpoch(1, [&] { order.push_back(10); });
  q.ScheduleAtEpoch(0, [&] { order.push_back(0); });
  q.ScheduleAtEpoch(1, [&] { order.push_back(11); });
  q.RunUntil(0.0);
  EXPECT_EQ(order, (std::vector<int>{0}));
  q.RunUntil(1.0);
  EXPECT_EQ(order, (std::vector<int>{0, 10, 11}));
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, EventsCanScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) q.ScheduleAfter(1.0, chain);
  };
  q.ScheduleAt(0.0, chain);
  q.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(q.Now(), 4.0);
}

TEST(EventQueueTest, StepRunsExactlyOne) {
  EventQueue q;
  int count = 0;
  q.ScheduleAt(1.0, [&] { ++count; });
  q.ScheduleAt(2.0, [&] { ++count; });
  EXPECT_TRUE(q.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(q.Step());
  EXPECT_FALSE(q.Step());
}

// ------------------------------------------------------------- processes --

TEST(PeriodicProcessTest, FiresAtFixedInterval) {
  EventQueue q;
  std::vector<double> fire_times;
  PeriodicProcess p(q, 10.0, 5.0, [&](int) {
    fire_times.push_back(q.Now());
    return true;
  });
  q.RunUntil(31.0);
  EXPECT_EQ(fire_times, (std::vector<double>{10.0, 15.0, 20.0, 25.0, 30.0}));
  EXPECT_EQ(p.TickCount(), 5);
}

TEST(PeriodicProcessTest, CallbackReceivesTickIndex) {
  EventQueue q;
  std::vector<int> ticks;
  PeriodicProcess p(q, 0.0, 1.0, [&](int tick) {
    ticks.push_back(tick);
    return tick < 2;
  });
  q.RunAll();
  EXPECT_EQ(ticks, (std::vector<int>{0, 1, 2}));
  EXPECT_FALSE(p.Running());
}

TEST(PeriodicProcessTest, StopCancelsFutureTicks) {
  EventQueue q;
  int fired = 0;
  PeriodicProcess p(q, 1.0, 1.0, [&](int) {
    ++fired;
    return true;
  });
  q.RunUntil(2.5);
  p.Stop();
  q.RunAll();
  EXPECT_EQ(fired, 2);
}

TEST(PeriodicProcessTest, ZeroPeriodThrows) {
  EventQueue q;
  EXPECT_THROW(PeriodicProcess(q, 0.0, 0.0, [](int) { return true; }),
               CheckFailure);
}

TEST(PoissonProcessTest, ArrivalCountNearExpectation) {
  EventQueue q;
  RandomStream rng(42);
  int arrivals = 0;
  PoissonProcess p(q, 2.0, rng, [&] {
    ++arrivals;
    return true;
  });
  q.RunUntil(1000.0);
  p.Stop();
  // Poisson(2000): within ±5 sigma ≈ ±224.
  EXPECT_NEAR(arrivals, 2000, 250);
}

TEST(PoissonProcessTest, StopsWhenCallbackReturnsFalse) {
  EventQueue q;
  RandomStream rng(7);
  int arrivals = 0;
  PoissonProcess p(q, 1.0, rng, [&] {
    ++arrivals;
    return arrivals < 3;
  });
  q.RunAll();
  EXPECT_EQ(arrivals, 3);
  EXPECT_EQ(p.ArrivalCount(), 3);
}

TEST(PoissonProcessTest, InvalidRateThrows) {
  EventQueue q;
  RandomStream rng(1);
  EXPECT_THROW(PoissonProcess(q, 0.0, rng, [] { return true; }),
               CheckFailure);
}

}  // namespace
}  // namespace pm::sim
