// Tests for the workload churn stream and its interaction with the
// periodic market (the full §V.B longitudinal setting).
#include <gtest/gtest.h>

#include "agents/workload_gen.h"
#include "exchange/churn.h"
#include "exchange/market.h"
#include "sim/event_queue.h"
#include "sim/process.h"

namespace pm::exchange {
namespace {

agents::WorkloadConfig SmallWorld(std::uint64_t seed) {
  agents::WorkloadConfig config;
  config.num_clusters = 6;
  config.num_teams = 18;
  config.min_machines_per_cluster = 15;
  config.max_machines_per_cluster = 25;
  // Leave headroom so arrivals have somewhere to land.
  config.max_target_utilization = 0.6;
  config.seed = seed;
  return config;
}

TEST(ChurnTest, ArrivalsPlaceJobsAndDeparturesFreeThem) {
  agents::World world = GenerateWorld(SmallWorld(1));
  sim::EventQueue queue;
  ChurnConfig config;
  config.arrival_rate = 2.0;
  config.mean_lifetime = 50.0;
  config.seed = 7;
  ChurnProcess churn(queue, &world.fleet, &world.agents, config);

  const std::size_t jobs_before = world.fleet.AllJobs().size();
  queue.RunUntil(200.0);
  churn.Stop();
  const ChurnStats& stats = churn.stats();
  // Poisson(400) arrivals expected; allow wide slack.
  EXPECT_GT(stats.jobs_started + stats.placement_failures, 250);
  EXPECT_GT(stats.jobs_finished, 100);
  // Steady state: live churn jobs = started − finished.
  const std::size_t live = world.fleet.AllJobs().size();
  EXPECT_EQ(static_cast<long long>(live),
            static_cast<long long>(jobs_before) + stats.jobs_started -
                stats.jobs_finished);
  // Draining the queue retires every remaining churn job: the fleet
  // returns to its pre-churn population.
  queue.RunAll();
  EXPECT_EQ(world.fleet.AllJobs().size(), jobs_before);
}

TEST(ChurnTest, UtilizationStaysPhysical) {
  agents::World world = GenerateWorld(SmallWorld(2));
  sim::EventQueue queue;
  ChurnConfig config;
  config.arrival_rate = 5.0;  // Heavy churn.
  config.mean_lifetime = 500.0;
  config.seed = 3;
  ChurnProcess churn(queue, &world.fleet, &world.agents, config);
  for (int epoch = 0; epoch < 10; ++epoch) {
    queue.RunUntil((epoch + 1) * 50.0);
    for (double u : world.fleet.UtilizationVector()) {
      EXPECT_GE(u, -1e-9);
      EXPECT_LE(u, 1.0 + 1e-9);
    }
  }
  // Under heavy sustained churn the full clusters must reject arrivals
  // rather than over-pack.
  EXPECT_GT(churn.stats().placement_failures, 0);
}

TEST(ChurnTest, StopHaltsArrivals) {
  agents::World world = GenerateWorld(SmallWorld(3));
  sim::EventQueue queue;
  ChurnConfig config;
  config.arrival_rate = 1.0;
  config.seed = 5;
  ChurnProcess churn(queue, &world.fleet, &world.agents, config);
  queue.RunUntil(50.0);
  churn.Stop();
  const long long started = churn.stats().jobs_started;
  queue.RunAll();  // Only departures remain.
  EXPECT_EQ(churn.stats().jobs_started, started);
}

TEST(ChurnTest, MarketAndChurnComposeOnOneClock) {
  // The §V.B setting end to end: weekly auctions over a fleet that
  // churns continuously between them.
  agents::World world = GenerateWorld(SmallWorld(4));
  exchange::MarketConfig market_config;
  Market market(&world.fleet, &world.agents, world.fixed_prices,
                market_config);
  sim::EventQueue queue;
  ChurnConfig churn_config;
  churn_config.arrival_rate = 0.5;
  churn_config.mean_lifetime = 200.0;
  churn_config.seed = 11;
  ChurnProcess churn(queue, &world.fleet, &world.agents, churn_config);
  sim::PeriodicProcess auctions(queue, 168.0, 168.0, [&](int tick) {
    const AuctionReport report = market.RunAuction();
    EXPECT_TRUE(report.converged) << "auction " << tick;
    return tick < 3;
  });
  queue.RunUntil(4 * 168.0 + 1.0);
  churn.Stop();
  EXPECT_EQ(market.AuctionCount(), 4);
  EXPECT_GT(churn.stats().jobs_started, 0);
  EXPECT_EQ(market.ledger().TotalBalance(), Money());
}

TEST(ChurnTest, ValidatesConfiguration) {
  agents::World world = GenerateWorld(SmallWorld(5));
  sim::EventQueue queue;
  ChurnConfig bad;
  bad.arrival_rate = 0.0;
  EXPECT_THROW(
      ChurnProcess(queue, &world.fleet, &world.agents, bad),
      CheckFailure);
}

}  // namespace
}  // namespace pm::exchange
