// Tests for the shard failure domains: epoch supervision, checkpoint /
// restore, health transitions, and crash recovery under a lossy wire.
//
// The contracts under test:
//   (1) Market::Snapshot/Restore round-trips byte-identically for every
//       market configuration the scenario library exercises, and a
//       restored market replays the next epoch bit-identically.
//   (2) A shard crashing mid-epoch is contained: the planet epoch
//       completes, the shard rolls back to its epoch-boundary
//       checkpoint, its treasury float is refunded, and the ledger's
//       conservation invariant (Σ teams + Σ floats + Σ shard-net ==
//       minted − burned) holds in every terminal state — including the
//       unsupervised path, where the failure propagates only after an
//       emergency sweep.
//   (3) The health machine walks healthy → degraded → quarantined →
//       recovering → healthy with deterministic epoch-denominated
//       backoff, and the supervisor left idle perturbs nothing.
//   (4) The acceptance scenario: a crash during a price war on a lossy
//       proxy wire completes with awarded == placed + refunded and
//       byte-identical metrics JSON across reruns and thread counts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "federation/federated_exchange.h"
#include "federation/report.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"

namespace pm::federation {
namespace {

// ------------------------------------------------------------- fixtures --

agents::WorkloadConfig SmallWorkload() {
  agents::WorkloadConfig config;
  config.num_clusters = 4;
  config.num_teams = 12;
  config.min_machines_per_cluster = 10;
  config.max_machines_per_cluster = 20;
  return config;
}

exchange::MarketConfig FastMarket() {
  exchange::MarketConfig config;
  config.auction.alpha = 0.4;
  config.auction.delta = 0.08;
  config.auction.max_rounds = 30000;
  return config;
}

std::vector<ShardSpec> ThreeShards() {
  std::vector<ShardSpec> specs;
  for (int k = 0; k < 3; ++k) {
    ShardSpec spec;
    spec.name = "region-" + std::to_string(k);
    spec.workload = SmallWorkload();
    spec.market = FastMarket();
    specs.push_back(std::move(spec));
  }
  return specs;
}

void ExpectConserved(const FederationTreasury& treasury) {
  EXPECT_EQ(treasury.CirculatingSupply(),
            treasury.TotalMinted() - treasury.TotalBurned());
  EXPECT_EQ(treasury.ledger().TotalBalance(), Money());
}

FederatedBid SampleBid(const std::string& team, const std::string& home) {
  FederatedBid bid;
  bid.team = team;
  bid.tag = "rollout";
  bid.quantity = cluster::TaskShape{16.0, 64.0, 2.0};
  bid.limit = 20000.0;
  bid.home_shard = home;
  return bid;
}

// --------------------------------------------- checkpoint / restore (1) --

TEST(SnapshotRoundTripTest, ByteIdenticalAcrossScenarioLibrary) {
  // Property: for every market configuration the scenario library ships
  // (outcome feedback, refund gates, move billing, treasuries...), a
  // shard snapshotted after two epochs restores byte-identically into a
  // freshly built twin, and the twin replays the next epoch bit for bit.
  for (const scenario::ScenarioSpec& spec : scenario::ScenarioLibrary()) {
    SCOPED_TRACE(spec.name);
    FederatedExchange original(spec.shards, spec.federation);
    original.RunEpoch();
    original.RunEpoch();

    std::vector<std::vector<std::uint8_t>> frames;
    for (std::size_t k = 0; k < original.NumShards(); ++k) {
      frames.push_back(original.ShardMarket(k).Snapshot());
    }

    FederatedExchange twin(spec.shards, spec.federation);
    for (std::size_t k = 0; k < twin.NumShards(); ++k) {
      twin.ShardMarket(k).Restore(frames[k]);
      EXPECT_EQ(twin.ShardMarket(k).Snapshot(), frames[k])
          << "shard " << k << " did not round-trip byte-identically";
    }

    const FederationReport a = original.RunEpoch();
    // The twin's epoch counter is 0, but shard markets carry all the
    // state that matters: the next auction must be bit-identical.
    const FederationReport b = twin.RunEpoch();
    ASSERT_EQ(a.shards.size(), b.shards.size());
    EXPECT_EQ(a.total_bids, b.total_bids);
    EXPECT_EQ(a.total_winners, b.total_winners);
    EXPECT_EQ(a.operator_revenue, b.operator_revenue);
    EXPECT_EQ(a.max_rounds, b.max_rounds);
    for (std::size_t k = 0; k < a.shards.size(); ++k) {
      EXPECT_EQ(a.shards[k].report.settled_prices,
                b.shards[k].report.settled_prices)
          << "shard " << k << " diverged after restore";
    }
  }
}

TEST(SnapshotRoundTripTest, CrashedShardRestoredBitIdentically) {
  FederationConfig config;
  config.seed = 77;
  config.supervisor.enabled = true;
  FederatedExchange fed(ThreeShards(), config);
  fed.RunEpoch();

  // The epoch-boundary state the supervisor's checkpoint must preserve.
  const std::vector<std::uint8_t> boundary = fed.ShardMarket(0).Snapshot();

  fed.InjectShardFailure(0);
  const FederationReport report = fed.RunEpoch();
  ASSERT_TRUE(report.shards[0].failed);
  EXPECT_EQ(report.health.restored_checkpoints, 1u);

  // Containment rolled the shard back to the exact bytes it entered the
  // epoch with — the crash left no trace.
  EXPECT_EQ(fed.ShardMarket(0).Snapshot(), boundary);

  // And the shard rejoins: next epoch it participates and heals.
  const FederationReport next = fed.RunEpoch();
  EXPECT_TRUE(next.shards[0].participated);
  EXPECT_FALSE(next.shards[0].failed);
  EXPECT_EQ(fed.ShardHealthOf(0).status, ShardHealth::kHealthy);
}

// ------------------------------------------------ epoch supervision (2) --

TEST(SupervisorTest, ContainsInjectedCrashAndConservesMoney) {
  FederationConfig config;
  config.seed = 11;
  config.supervisor.enabled = true;
  config.economy.treasury = true;
  FederatedExchange fed(ThreeShards(), config);
  fed.EndowFederatedTeam("globex", Money::FromDollars(50000));
  fed.RunEpoch();

  fed.InjectShardFailure(1);
  const FederationReport report = fed.RunEpoch();

  // The planet epoch completed: healthy shards ran and aggregated.
  EXPECT_TRUE(report.shards[0].participated);
  EXPECT_FALSE(report.shards[0].failed);
  EXPECT_GT(report.total_bids, 0u);

  // The crash was contained and audited.
  EXPECT_TRUE(report.health.supervised);
  EXPECT_EQ(report.health.failed_shards, 1u);
  EXPECT_EQ(report.health.restored_checkpoints, 1u);
  EXPECT_TRUE(report.shards[1].failed);
  EXPECT_FALSE(report.shards[1].failure.empty());
  EXPECT_EQ(fed.ShardHealthOf(1).status, ShardHealth::kDegraded);
  EXPECT_EQ(fed.ShardHealthOf(1).failure_streak, 1);

  // The dead shard's float was refunded, not swept as spend: every
  // float is zero between epochs and the planet ledger still balances.
  ASSERT_NE(fed.treasury(), nullptr);
  EXPECT_GT(report.health.refunded_allowance, 0.0);
  for (std::size_t k = 0; k < fed.NumShards(); ++k) {
    EXPECT_EQ(fed.treasury()->ShardFloat(k), Money()) << "shard " << k;
    EXPECT_EQ(fed.treasury()->Outstanding("globex", k), Money());
  }
  ExpectConserved(*fed.treasury());
}

TEST(SupervisorTest, RoundBudgetOverrunIsContained) {
  FederationConfig config;
  config.seed = 13;
  config.supervisor.enabled = true;
  FederatedExchange fed(ThreeShards(), config);
  fed.RunEpoch();

  // A zero-round budget is never enough: the virtual-time epoch
  // deadline fires and the supervisor books a contained failure.
  fed.InjectEpochRoundBudget(2, 0);
  const FederationReport report = fed.RunEpoch();
  EXPECT_EQ(report.health.failed_shards, 1u);
  EXPECT_TRUE(report.shards[2].failed);
  EXPECT_NE(report.shards[2].failure.find("budget"), std::string::npos);

  // A generous budget is not a failure.
  fed.InjectEpochRoundBudget(2, 1 << 20);
  EXPECT_EQ(fed.RunEpoch().health.failed_shards, 0u);
}

TEST(SupervisorTest, FailedShardBidsAreRerouted) {
  FederationConfig config;
  config.seed = 17;
  config.supervisor.enabled = true;
  config.router.policy = RoutingPolicy::kHomeAffinity;
  config.router.spill_threshold = 1e9;  // Pin bids to their home shard.
  FederatedExchange fed(ThreeShards(), config);
  fed.EndowFederatedTeam("globex", Money::FromDollars(50000));

  fed.SubmitFederatedBid(SampleBid("globex", "region-0"));
  fed.InjectShardFailure(0);
  const FederationReport report = fed.RunEpoch();

  // Every part of the bid died with its shard; the original federated
  // bid went back in the queue for the next epoch's routing pass.
  EXPECT_EQ(report.health.rerouted_bids, 1u);
  EXPECT_EQ(report.health.refunded_bids, 0u);
  EXPECT_EQ(fed.PendingFederatedBids(), 1u);

  // Next epoch the bid routes and clears somewhere healthy.
  const FederationReport next = fed.RunEpoch();
  EXPECT_EQ(next.routed.size(), 1u);
  EXPECT_EQ(fed.PendingFederatedBids(), 0u);
}

TEST(SupervisorTest, FailedShardBidsAreRefundedWhenRerouteIsOff) {
  FederationConfig config;
  config.seed = 17;
  config.supervisor.enabled = true;
  config.supervisor.reroute_failed_bids = false;
  config.router.policy = RoutingPolicy::kHomeAffinity;
  config.router.spill_threshold = 1e9;
  FederatedExchange fed(ThreeShards(), config);
  fed.EndowFederatedTeam("globex", Money::FromDollars(50000));

  fed.SubmitFederatedBid(SampleBid("globex", "region-0"));
  fed.InjectShardFailure(0);
  const FederationReport report = fed.RunEpoch();
  EXPECT_EQ(report.health.rerouted_bids, 0u);
  EXPECT_EQ(report.health.refunded_bids, 1u);
  EXPECT_EQ(fed.PendingFederatedBids(), 0u);
}

TEST(SupervisorTest, UnsupervisedCrashSweepsTreasuryBeforePropagating) {
  // The exception-safety regression: without a supervisor a throwing
  // shard used to leave this epoch's allowances stranded in shard
  // floats. The emergency sweep must reconcile every float before the
  // failure escapes RunEpoch.
  FederationConfig config;
  config.seed = 19;
  config.economy.treasury = true;
  FederatedExchange fed(ThreeShards(), config);
  fed.EndowFederatedTeam("globex", Money::FromDollars(50000));
  fed.RunEpoch();

  fed.InjectShardFailure(1);
  EXPECT_THROW(fed.RunEpoch(), CheckFailure);

  ASSERT_NE(fed.treasury(), nullptr);
  EXPECT_EQ(fed.treasury()->FloatTotal(), Money());
  for (std::size_t k = 0; k < fed.NumShards(); ++k) {
    EXPECT_EQ(fed.treasury()->Outstanding("globex", k), Money());
  }
  ExpectConserved(*fed.treasury());
}

// ------------------------------------------------- health machine (3) --

TEST(HealthMachineTest, QuarantineBackoffRecoveryCycle) {
  FederationConfig config;
  config.seed = 23;
  config.supervisor.enabled = true;
  config.supervisor.quarantine_streak = 2;
  config.supervisor.backoff_base = 1;
  FederatedExchange fed(ThreeShards(), config);

  // Two consecutive crashes: degraded, then quarantined with backoff.
  fed.InjectShardFailure(0);
  fed.RunEpoch();
  EXPECT_EQ(fed.ShardHealthOf(0).status, ShardHealth::kDegraded);
  EXPECT_EQ(fed.ShardHealthOf(0).failure_streak, 1);

  fed.InjectShardFailure(0);
  fed.RunEpoch();
  EXPECT_EQ(fed.ShardHealthOf(0).status, ShardHealth::kQuarantined);
  EXPECT_EQ(fed.ShardHealthOf(0).failure_streak, 2);
  EXPECT_EQ(fed.ShardHealthOf(0).backoff_remaining, 1);
  EXPECT_EQ(fed.ShardHealthOf(0).quarantine_count, 1);

  // Backoff epoch: the shard sits the round out entirely.
  const FederationReport benched = fed.RunEpoch();
  EXPECT_FALSE(benched.shards[0].participated);
  EXPECT_EQ(benched.health.quarantined_shards, 1u);
  EXPECT_EQ(fed.ShardHealthOf(0).status, ShardHealth::kQuarantined);
  EXPECT_EQ(fed.ShardHealthOf(0).backoff_remaining, 0);

  // Probation epoch: the shard retries, clears cleanly, and heals.
  const FederationReport probation = fed.RunEpoch();
  EXPECT_TRUE(probation.shards[0].participated);
  EXPECT_EQ(fed.ShardHealthOf(0).status, ShardHealth::kHealthy);
  EXPECT_EQ(fed.ShardHealthOf(0).failure_streak, 0);
  EXPECT_EQ(fed.ShardHealthOf(0).retries, 1);
}

TEST(HealthMachineTest, FailedProbationDoublesBackoff) {
  FederationConfig config;
  config.seed = 29;
  config.supervisor.enabled = true;
  config.supervisor.quarantine_streak = 2;
  config.supervisor.backoff_base = 1;
  config.supervisor.backoff_cap = 8;
  FederatedExchange fed(ThreeShards(), config);

  fed.InjectShardFailure(0);
  fed.RunEpoch();
  fed.InjectShardFailure(0);
  fed.RunEpoch();                  // Quarantined, backoff 1.
  fed.RunEpoch();                  // Benched; backoff drains to 0.
  fed.InjectShardFailure(0);       // Crash again during probation...
  fed.RunEpoch();
  // ...and the streak never reset, so it re-quarantines immediately
  // with the backoff doubled.
  EXPECT_EQ(fed.ShardHealthOf(0).status, ShardHealth::kQuarantined);
  EXPECT_EQ(fed.ShardHealthOf(0).backoff_remaining, 2);
  EXPECT_EQ(fed.ShardHealthOf(0).quarantine_count, 2);
}

TEST(HealthMachineTest, QuarantinedShardIsNotQuotedByRouter) {
  FederationConfig config;
  config.seed = 31;
  config.supervisor.enabled = true;
  config.supervisor.quarantine_streak = 1;  // One strike quarantines.
  FederatedExchange fed(ThreeShards(), config);
  fed.EndowFederatedTeam("globex", Money::FromDollars(50000));

  fed.InjectShardFailure(0);
  fed.RunEpoch();
  ASSERT_EQ(fed.ShardHealthOf(0).status, ShardHealth::kQuarantined);

  // A home-affinity bid for the quarantined shard must spill elsewhere
  // rather than strand.
  fed.SubmitFederatedBid(SampleBid("globex", "region-0"));
  const FederationReport report = fed.RunEpoch();
  ASSERT_EQ(report.routed.size(), 1u);
  EXPECT_NE(report.routed.front().shard, 0u);
}

TEST(SupervisorTest, IdleSupervisorIsBitIdenticalToUnsupervised) {
  // Config-gating contract: a supervisor that never fires must not
  // perturb one bit of the market outcomes.
  FederationConfig off;
  off.seed = 37;
  off.economy.treasury = true;
  FederationConfig on = off;
  on.supervisor.enabled = true;

  FederatedExchange a(ThreeShards(), off);
  FederatedExchange b(ThreeShards(), on);
  a.EndowFederatedTeam("globex", Money::FromDollars(50000));
  b.EndowFederatedTeam("globex", Money::FromDollars(50000));
  a.SubmitFederatedBid(SampleBid("globex", "region-1"));
  b.SubmitFederatedBid(SampleBid("globex", "region-1"));

  for (int epoch = 0; epoch < 3; ++epoch) {
    const FederationReport ra = a.RunEpoch();
    const FederationReport rb = b.RunEpoch();
    EXPECT_EQ(ra.total_bids, rb.total_bids);
    EXPECT_EQ(ra.operator_revenue, rb.operator_revenue);
  }
  for (std::size_t k = 0; k < a.NumShards(); ++k) {
    EXPECT_EQ(a.ShardMarket(k).Snapshot(), b.ShardMarket(k).Snapshot());
  }
}

// ------------------------------------- crash + lossy wire acceptance (4) --

scenario::ScenarioSpec LossyOutageSpec() {
  scenario::ScenarioSpec spec =
      scenario::FindScenario("outage-during-price-war");
  spec.federation.proxy_nodes_per_shard = 2;
  spec.federation.wire_faults.drop = 0.05;
  spec.federation.wire_faults.duplicate = 0.05;
  spec.federation.wire_faults.delay_window = 2;
  spec.federation.wire_faults.max_retries = 8;
  spec.federation.wire_faults.seed = 4242;
  for (ShardSpec& shard : spec.shards) {
    shard.market.auction.intra_round_bisection = false;
  }
  return spec;
}

TEST(AcceptanceTest, CrashDuringPriceWarOnLossyWire) {
  // The PR's headline path: one shard crashes twice mid-price-war while
  // every shard clears over a lossy proxy wire. The run must complete
  // with the refund identity intact every epoch, the ledger conserved,
  // full recovery by the final epoch, and byte-identical metrics JSON
  // across reruns and thread counts.
  scenario::RunnerConfig config;
  config.seed = 20090425;
  scenario::ScenarioRunner serial(LossyOutageSpec(), config);
  const scenario::ScenarioMetrics m1 = serial.Run();

  EXPECT_TRUE(m1.slos_evaluated);
  EXPECT_TRUE(m1.slo_pass) << m1.ToJson();
  EXPECT_EQ(m1.shard_failures, 2u);
  EXPECT_EQ(m1.checkpoint_restores, 2u);
  EXPECT_LE(m1.max_treasury_residual, 1e-6);
  const scenario::EpochSample& last = m1.series.back();
  EXPECT_EQ(last.failed_shards, 0u);
  EXPECT_EQ(last.quarantined_shards, 0u);
  for (const scenario::EpochSample& sample : m1.series) {
    const double gap = std::abs(sample.awarded_units - sample.placed_units -
                                sample.refunded_units);
    EXPECT_LE(gap, 1e-9 * std::max(1.0, sample.awarded_units))
        << "epoch " << sample.epoch;
  }

  // Rerun, and rerun on four threads: byte-identical JSON.
  scenario::ScenarioRunner rerun(LossyOutageSpec(), config);
  EXPECT_EQ(m1.ToJson(), rerun.Run().ToJson());
  config.num_threads = 4;
  scenario::ScenarioRunner threaded(LossyOutageSpec(), config);
  EXPECT_EQ(m1.ToJson(), threaded.Run().ToJson());
}

}  // namespace
}  // namespace pm::federation
