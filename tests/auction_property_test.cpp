// Property tests for the clock auction: on randomized markets of pure
// buyers and sellers, every converged run must land on a SYSTEM-feasible
// point (§III.C.4 "provided that it converges, the clock auction
// necessarily finds a feasible point"), prices must rise monotonically
// from the reserves, and convergence itself is guaranteed (§III.C.3).
// Swept across seeds × increment policies with TEST_P.
#include <gtest/gtest.h>

#include <tuple>

#include "auction/clock_auction.h"
#include "auction/settlement.h"
#include "auction/system_check.h"
#include "common/rng.h"

namespace pm::auction {
namespace {

using PolicyKind = ClockAuctionConfig::PolicyKind;

struct Instance {
  std::vector<bid::Bid> bids;
  std::vector<double> supply;
  std::vector<double> reserve;
};

/// Random market: R pools, buyers with 1–3 sparse bundles, some sellers.
Instance MakeInstance(std::uint64_t seed, std::size_t num_pools,
                      std::size_t num_users, double seller_fraction) {
  RandomStream rng(seed);
  Instance inst;
  inst.supply.resize(num_pools);
  inst.reserve.resize(num_pools);
  for (std::size_t r = 0; r < num_pools; ++r) {
    inst.supply[r] = rng.Uniform(5.0, 50.0);
    inst.reserve[r] = rng.Uniform(0.5, 5.0);
  }
  for (std::size_t u = 0; u < num_users; ++u) {
    bid::Bid b;
    b.user = static_cast<UserId>(u);
    b.name = "u" + std::to_string(u);
    const bool seller = rng.Bernoulli(seller_fraction);
    const int num_bundles = static_cast<int>(rng.UniformInt(1, 3));
    double max_reserve_cost = 0.0;
    for (int k = 0; k < num_bundles; ++k) {
      const int items = static_cast<int>(rng.UniformInt(1, 3));
      std::vector<bid::BundleItem> bundle_items;
      double reserve_cost = 0.0;
      for (int i = 0; i < items; ++i) {
        const auto pool = static_cast<PoolId>(
            rng.UniformInt(0, static_cast<std::int64_t>(num_pools) - 1));
        const double qty = rng.Uniform(1.0, 8.0) * (seller ? -1.0 : 1.0);
        bundle_items.push_back(bid::BundleItem{pool, qty});
        reserve_cost += std::abs(qty) * inst.reserve[pool];
      }
      bid::Bundle bundle(std::move(bundle_items));
      if (bundle.Empty()) continue;  // Duplicate pools cancelled out.
      b.bundles.push_back(std::move(bundle));
      max_reserve_cost = std::max(max_reserve_cost, reserve_cost);
    }
    if (b.bundles.empty()) continue;
    if (seller) {
      // Min revenue between 20% and 120% of reserve value.
      b.limit = -max_reserve_cost * rng.Uniform(0.2, 1.2);
    } else {
      // Willingness to pay between 50% and 300% of reserve cost.
      b.limit = max_reserve_cost * rng.Uniform(0.5, 3.0);
    }
    inst.bids.push_back(std::move(b));
  }
  bid::AssignUserIds(inst.bids);
  return inst;
}

class ClockAuctionPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, PolicyKind>> {
 protected:
  ClockAuctionConfig Config() const {
    ClockAuctionConfig config;
    config.policy_kind = std::get<1>(GetParam());
    config.alpha = 0.4;
    config.delta = 0.08;
    config.step_floor = 0.01;
    config.max_rounds = 50000;
    if (config.policy_kind == PolicyKind::kCostNormalized) {
      config.base_costs.assign(kNumPools, 1.0);
      for (std::size_t r = 0; r < kNumPools; ++r) {
        config.base_costs[r] = 0.5 + static_cast<double>(r);
      }
    }
    return config;
  }

  std::uint64_t Seed() const {
    return 1000 + static_cast<std::uint64_t>(std::get<0>(GetParam()));
  }

  static constexpr std::size_t kNumPools = 6;
};

TEST_P(ClockAuctionPropertyTest, PureBuyersAndSellersAlwaysConverge) {
  const Instance inst = MakeInstance(Seed(), kNumPools, 24, 0.3);
  ClockAuction auction(inst.bids, inst.supply, inst.reserve);
  const ClockAuctionResult r = auction.Run(Config());
  EXPECT_TRUE(r.converged) << "rounds = " << r.rounds;
}

TEST_P(ClockAuctionPropertyTest, ConvergedResultIsSystemFeasible) {
  const Instance inst = MakeInstance(Seed(), kNumPools, 24, 0.3);
  ClockAuction auction(inst.bids, inst.supply, inst.reserve);
  const ClockAuctionResult r = auction.Run(Config());
  ASSERT_TRUE(r.converged);
  const SystemCheckResult check =
      CheckSystemConstraints(auction, r, 1e-6);
  EXPECT_TRUE(check.Feasible()) << check.ToString();
}

TEST_P(ClockAuctionPropertyTest, PricesMonotoneFromReserve) {
  const Instance inst = MakeInstance(Seed(), kNumPools, 24, 0.2);
  ClockAuction auction(inst.bids, inst.supply, inst.reserve);
  ClockAuctionConfig config = Config();
  config.record_trajectory = true;
  const ClockAuctionResult r = auction.Run(config);
  ASSERT_TRUE(r.converged);
  ASSERT_FALSE(r.trajectory.empty());
  for (std::size_t p = 0; p < kNumPools; ++p) {
    EXPECT_GE(r.trajectory.front().prices[p], inst.reserve[p]);
  }
  for (std::size_t t = 1; t < r.trajectory.size(); ++t) {
    for (std::size_t p = 0; p < kNumPools; ++p) {
      EXPECT_GE(r.trajectory[t].prices[p],
                r.trajectory[t - 1].prices[p] - 1e-12);
    }
  }
}

TEST_P(ClockAuctionPropertyTest, SettlementConservesResources) {
  const Instance inst = MakeInstance(Seed(), kNumPools, 24, 0.3);
  ClockAuction auction(inst.bids, inst.supply, inst.reserve);
  const ClockAuctionResult r = auction.Run(Config());
  ASSERT_TRUE(r.converged);
  const Settlement s = Settle(auction, r);
  double total_payments = 0.0;
  for (const Award& a : s.awards) total_payments += a.payment;
  EXPECT_NEAR(s.operator_revenue, total_payments, 1e-6);
  for (std::size_t p = 0; p < kNumPools; ++p) {
    EXPECT_LE(s.supply_sold[p],
              inst.supply[p] * (1.0 + 1e-6) + 1e-6);
    EXPECT_GE(s.supply_sold[p], 0.0);
    EXPECT_GE(s.surplus_absorbed[p], 0.0);
  }
  EXPECT_EQ(s.awards.size() + s.losers.size(), inst.bids.size());
}

TEST_P(ClockAuctionPropertyTest, WinnersAffordTheirAwards) {
  const Instance inst = MakeInstance(Seed(), kNumPools, 24, 0.25);
  ClockAuction auction(inst.bids, inst.supply, inst.reserve);
  const ClockAuctionResult r = auction.Run(Config());
  ASSERT_TRUE(r.converged);
  const Settlement s = Settle(auction, r);
  for (const Award& a : s.awards) {
    EXPECT_LE(a.payment, inst.bids[a.user].limit + 1e-6)
        << "user " << a.user;
  }
}

using PolicyParam = std::tuple<int, PolicyKind>;

std::string PolicyParamName(
    const ::testing::TestParamInfo<PolicyParam>& info) {
  static constexpr const char* kNames[] = {
      "additive", "capped", "relative", "costnorm", "multiplicative"};
  return "seed" + std::to_string(std::get<0>(info.param)) + "_" +
         kNames[static_cast<int>(std::get<1>(info.param))];
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPolicies, ClockAuctionPropertyTest,
    ::testing::Combine(
        ::testing::Range(0, 8),
        ::testing::Values(PolicyKind::kAdditive, PolicyKind::kCapped,
                          PolicyKind::kRelativeCapped,
                          PolicyKind::kCostNormalized,
                          PolicyKind::kMultiplicative)),
    PolicyParamName);

// Buyer-only sweep with bisection on: the tightened clearing price must
// still satisfy every SYSTEM constraint.
class BisectionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BisectionPropertyTest, BisectedOutcomeIsFeasible) {
  const Instance inst =
      MakeInstance(2000 + static_cast<std::uint64_t>(GetParam()), 5, 18,
                   0.0);
  ClockAuction auction(inst.bids, inst.supply, inst.reserve);
  ClockAuctionConfig config;
  config.policy_kind = PolicyKind::kRelativeCapped;
  config.alpha = 0.8;
  config.delta = 0.25;  // Coarse steps: bisection has work to do.
  config.step_floor = 0.05;
  config.intra_round_bisection = true;
  const ClockAuctionResult r = auction.Run(config);
  ASSERT_TRUE(r.converged);
  const SystemCheckResult check = CheckSystemConstraints(auction, r, 1e-6);
  EXPECT_TRUE(check.Feasible()) << check.ToString();
}

TEST_P(BisectionPropertyTest, BisectionNeverRaisesFinalPrices) {
  const Instance inst =
      MakeInstance(2000 + static_cast<std::uint64_t>(GetParam()), 5, 18,
                   0.0);
  ClockAuction auction(inst.bids, inst.supply, inst.reserve);
  ClockAuctionConfig coarse;
  coarse.policy_kind = PolicyKind::kRelativeCapped;
  coarse.alpha = 0.8;
  coarse.delta = 0.25;
  coarse.step_floor = 0.05;
  const ClockAuctionResult plain = auction.Run(coarse);
  ClockAuctionConfig bisect = coarse;
  bisect.intra_round_bisection = true;
  const ClockAuctionResult tight = auction.Run(bisect);
  ASSERT_TRUE(plain.converged && tight.converged);
  for (std::size_t p = 0; p < inst.supply.size(); ++p) {
    EXPECT_LE(tight.prices[p], plain.prices[p] + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BisectionPropertyTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace pm::auction
