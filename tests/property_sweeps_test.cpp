// Parameterized property sweeps across modules:
//  * random bid-language trees: alternative counting vs actual expansion,
//    and concrete-syntax round-trips through the parser
//  * bin-packing placement invariants across policies × random workloads
//  * whole-market invariants across seeds (conservation, price floors,
//    report sanity)
//  * distributed/serial equivalence across proxy-node counts
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "agents/workload_gen.h"
#include "bid/tbbl_flatten.h"
#include "bid/tbbl_parser.h"
#include "cluster/scheduler.h"
#include "common/rng.h"
#include "exchange/market.h"
#include "net/distributed_auction.h"
#include "net/wire.h"

namespace pm {
namespace {

// ------------------------------------------------- random TBBL trees --

/// Builds a random tree. Leaves draw from a pool of (kind, cluster)
/// pairs with positive quantities, so AND products cannot cancel.
std::unique_ptr<bid::TbblNode> RandomTree(RandomStream& rng, int depth) {
  const double leaf_probability = depth >= 3 ? 1.0 : 0.4;
  if (rng.Bernoulli(leaf_probability)) {
    const auto kind = static_cast<ResourceKind>(rng.UniformInt(0, 2));
    const std::string cluster =
        "c" + std::to_string(rng.UniformInt(0, 5));
    // Integer quantities so the ToString → parse round-trip is lossless
    // (the renderer uses default double formatting).
    return bid::TbblNode::Leaf(
        kind, cluster, static_cast<double>(rng.UniformInt(1, 20)));
  }
  const bool is_xor = rng.Bernoulli(0.5);
  const int fanout = static_cast<int>(rng.UniformInt(1, 3));
  std::vector<std::unique_ptr<bid::TbblNode>> children;
  for (int i = 0; i < fanout; ++i) {
    children.push_back(RandomTree(rng, depth + 1));
  }
  return is_xor ? bid::TbblNode::Xor(std::move(children))
                : bid::TbblNode::And(std::move(children));
}

class TbblPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TbblPropertyTest, ExpansionMatchesCountAlternatives) {
  RandomStream rng(9000 + static_cast<std::uint64_t>(GetParam()));
  const auto tree = RandomTree(rng, 0);
  const std::size_t predicted = tree->CountAlternatives(100000);
  PoolRegistry registry;
  std::string error;
  const std::vector<bid::Bundle> bundles =
      bid::FlattenTree(*tree, registry, 100000, error);
  ASSERT_TRUE(error.empty()) << error;
  // Flattening may merge duplicate alternatives only at the Bid level;
  // FlattenTree itself returns the raw expansion.
  EXPECT_EQ(bundles.size(), predicted);
}

TEST_P(TbblPropertyTest, ConcreteSyntaxRoundTripsThroughParser) {
  RandomStream rng(9100 + static_cast<std::uint64_t>(GetParam()));
  const auto tree = RandomTree(rng, 0);
  std::ostringstream source;
  source << "bid \"roundtrip\" limit 123.5 { " << tree->ToString()
         << " }";

  const bid::ParseResult parsed = bid::ParseTbbl(source.str());
  ASSERT_TRUE(parsed.ok()) << parsed.errors[0].ToString();
  ASSERT_EQ(parsed.statements.size(), 1u);

  PoolRegistry reg_a, reg_b;
  std::string err_a, err_b;
  const auto direct = bid::FlattenTree(*tree, reg_a, 100000, err_a);
  const auto reparsed = bid::FlattenTree(*parsed.statements[0].root,
                                         reg_b, 100000, err_b);
  ASSERT_TRUE(err_a.empty() && err_b.empty());
  ASSERT_EQ(direct.size(), reparsed.size());
  // Registries were built in identical interning order, so bundles must
  // match exactly, in order.
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i], reparsed[i]) << "alternative " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TbblPropertyTest, ::testing::Range(0, 12));

// ------------------------------------------------ placement invariants --

using PlacementParam = std::tuple<int, cluster::PlacementPolicy>;

class PlacementPropertyTest
    : public ::testing::TestWithParam<PlacementParam> {};

TEST_P(PlacementPropertyTest, NeverExceedsCapacityAndUndoRestores) {
  RandomStream rng(7700 + static_cast<std::uint64_t>(
                              std::get<0>(GetParam())));
  const cluster::PlacementPolicy policy = std::get<1>(GetParam());

  std::vector<cluster::Machine> machines;
  const int num_machines = static_cast<int>(rng.UniformInt(3, 12));
  for (int m = 0; m < num_machines; ++m) {
    machines.emplace_back(cluster::TaskShape{
        rng.Uniform(8.0, 32.0), rng.Uniform(32.0, 128.0),
        rng.Uniform(4.0, 16.0)});
  }
  const std::vector<cluster::Machine> pristine = machines;

  struct Placed {
    cluster::TaskShape shape;
    cluster::PlacementResult result;
  };
  std::vector<Placed> history;
  for (int round = 0; round < 20; ++round) {
    const cluster::TaskShape shape{rng.Uniform(0.5, 6.0),
                                   rng.Uniform(1.0, 24.0),
                                   rng.Uniform(0.1, 3.0)};
    const int count = static_cast<int>(rng.UniformInt(1, 10));
    cluster::PlacementResult result =
        PlaceTasks(machines, shape, count, policy);
    EXPECT_EQ(result.TotalPlaced() + result.tasks_failed, count);
    for (const cluster::Machine& m : machines) {
      for (ResourceKind kind : kAllResourceKinds) {
        EXPECT_LE(m.used().Of(kind),
                  m.capacity().Of(kind) * (1.0 + 1e-9) + 1e-9);
        EXPECT_GE(m.used().Of(kind), -1e-9);
      }
    }
    history.push_back(Placed{shape, std::move(result)});
  }
  // Undo everything; machines must return to pristine state.
  for (auto it = history.rbegin(); it != history.rend(); ++it) {
    UndoPlacement(machines, it->shape, it->result);
  }
  for (std::size_t m = 0; m < machines.size(); ++m) {
    for (ResourceKind kind : kAllResourceKinds) {
      EXPECT_NEAR(machines[m].used().Of(kind),
                  pristine[m].used().Of(kind), 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPolicies, PlacementPropertyTest,
    ::testing::Combine(
        ::testing::Range(0, 6),
        ::testing::Values(cluster::PlacementPolicy::kFirstFit,
                          cluster::PlacementPolicy::kBestFit,
                          cluster::PlacementPolicy::kWorstFit)));

// --------------------------------------------------- market invariants --

class MarketPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MarketPropertyTest, AuctionRoundInvariants) {
  agents::WorkloadConfig workload;
  workload.num_clusters = 8;
  workload.num_teams = 28;
  workload.min_machines_per_cluster = 12;
  workload.max_machines_per_cluster = 24;
  workload.seed = 5000 + static_cast<std::uint64_t>(GetParam());
  agents::World world = GenerateWorld(workload);
  exchange::MarketConfig config;
  exchange::Market market(&world.fleet, &world.agents,
                          world.fixed_prices, config);

  for (int round = 0; round < 3; ++round) {
    const exchange::AuctionReport report = market.RunAuction();
    // Conservation: total money never created or destroyed.
    EXPECT_EQ(market.ledger().TotalBalance(), Money());
    // Prices respect the reserve floor.
    ASSERT_EQ(report.settled_prices.size(),
              report.reserve_prices.size());
    for (std::size_t r = 0; r < report.settled_prices.size(); ++r) {
      EXPECT_GE(report.settled_prices[r],
                report.reserve_prices[r] - 1e-9);
    }
    // Report sanity.
    EXPECT_LE(report.num_winners, report.num_bids);
    for (const exchange::TradeSample& t : report.trades) {
      EXPECT_GE(t.util_percentile, 0.0);
      EXPECT_LE(t.util_percentile, 100.0);
      EXPECT_GT(t.qty, 0.0);
    }
    // Fleet stays physically sane.
    for (double u : report.post_utilization) {
      EXPECT_GE(u, -1e-9);
      EXPECT_LE(u, 1.0 + 1e-9);
    }
    // No budget account may end negative (only the treasury can).
    for (const agents::TeamAgent& agent : world.agents) {
      EXPECT_GE(market.TeamBudget(agent.profile().name), Money());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarketPropertyTest,
                         ::testing::Range(0, 8));

// -------------------------------------- distributed equivalence sweep --

class DistributedSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(DistributedSweepTest, AnyNodeCountMatchesSerial) {
  RandomStream rng(3300);
  constexpr std::size_t kPools = 6;
  std::vector<double> supply(kPools), reserve(kPools);
  for (std::size_t r = 0; r < kPools; ++r) {
    supply[r] = rng.Uniform(5.0, 30.0);
    reserve[r] = rng.Uniform(0.5, 2.0);
  }
  std::vector<bid::Bid> bids;
  for (UserId u = 0; u < 37; ++u) {
    bid::Bid b;
    b.user = u;
    b.name = "u" + std::to_string(u);
    const auto pool = static_cast<PoolId>(rng.UniformInt(0, kPools - 1));
    const double qty = rng.Uniform(1.0, 5.0);
    b.bundles = {bid::Bundle({bid::BundleItem{pool, qty}})};
    b.limit = qty * reserve[pool] * rng.Uniform(1.1, 3.0);
    bids.push_back(std::move(b));
  }
  const auction::ClockAuction auction(std::move(bids), std::move(supply),
                                      std::move(reserve));
  auction::ClockAuctionConfig config;
  config.alpha = 0.4;
  config.delta = 0.08;
  const auction::ClockAuctionResult serial = auction.Run(config);

  net::DistributedConfig dist;
  dist.num_proxy_nodes = static_cast<std::size_t>(GetParam());
  dist.auction = config;
  const net::DistributedResult d = RunDistributedAuction(auction, dist);
  EXPECT_EQ(serial.prices, d.result.prices);
  EXPECT_EQ(serial.rounds, d.result.rounds);
  EXPECT_EQ(d.transport.decode_failures, 0);
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, DistributedSweepTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// ----------------------------------------------- robustness fuzzing --

class FuzzSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSweepTest, WireDecodersNeverCrashOnGarbage) {
  RandomStream rng(4400 + static_cast<std::uint64_t>(GetParam()));
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> frame(
        static_cast<std::size_t>(rng.UniformInt(0, 64)));
    for (auto& byte : frame) {
      byte = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
    }
    // Random bytes must be rejected cleanly, never crash or throw.
    EXPECT_NO_THROW({
      (void)net::PeekType(frame);
      (void)net::DecodePriceAnnounce(frame);
      (void)net::DecodeDemandReply(frame);
      (void)net::DecodeTerminate(frame);
    });
  }
}

TEST_P(FuzzSweepTest, CorruptedRealFramesAreRejectedOrEqual) {
  RandomStream rng(4500 + static_cast<std::uint64_t>(GetParam()));
  net::PriceAnnounce msg;
  msg.round = 12;
  for (int i = 0; i < 16; ++i) msg.prices.push_back(rng.Uniform(0, 10));
  const std::vector<std::uint8_t> good = net::Encode(msg);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> frame = good;
    const auto pos = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(frame.size()) - 1));
    const auto bit = static_cast<int>(rng.UniformInt(0, 7));
    frame[pos] ^= static_cast<std::uint8_t>(1 << bit);
    // A flipped bit must never yield a *different* successfully decoded
    // message: the checksum catches it.
    const auto decoded = net::DecodePriceAnnounce(frame);
    EXPECT_FALSE(decoded.has_value());
  }
}

TEST_P(FuzzSweepTest, ParserNeverCrashesOnTokenSoup) {
  RandomStream rng(4600 + static_cast<std::uint64_t>(GetParam()));
  const char* fragments[] = {"bid",  "offer",  "limit", "min",
                             "xor",  "and",    "{",     "}",
                             ":",    "@",      "cpu",   "ram",
                             "disk", "\"t\"",  "3.5",   "-2",
                             "c1",   "###",    "\n",    "\"", "$"};
  for (int i = 0; i < 150; ++i) {
    std::string source;
    const int tokens = static_cast<int>(rng.UniformInt(0, 40));
    for (int t = 0; t < tokens; ++t) {
      source += fragments[rng.UniformInt(
          0, static_cast<std::int64_t>(std::size(fragments)) - 1)];
      source += ' ';
    }
    EXPECT_NO_THROW({
      PoolRegistry registry;
      const bid::FlattenOutcome out =
          bid::CompileBids(source, registry);
      // Either it compiled or it reported an error; both are fine.
      if (!out.ok()) EXPECT_FALSE(out.error.empty());
    }) << source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweepTest, ::testing::Range(0, 4));

}  // namespace
}  // namespace pm
