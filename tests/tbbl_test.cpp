// Tests for the tree-based bidding language: lexer, parser, flattener.
#include <gtest/gtest.h>

#include "bid/tbbl_flatten.h"
#include "bid/tbbl_lexer.h"
#include "bid/tbbl_parser.h"

namespace pm::bid {
namespace {

// ------------------------------------------------------------------ lexer --

TEST(LexerTest, TokenizesPunctuationAndKeywords) {
  const auto tokens = Tokenize("bid offer limit min xor and { } : @");
  ASSERT_EQ(tokens.size(), 11u);  // 10 tokens + end.
  EXPECT_EQ(tokens[0].kind, TokenKind::kKwBid);
  EXPECT_EQ(tokens[1].kind, TokenKind::kKwOffer);
  EXPECT_EQ(tokens[2].kind, TokenKind::kKwLimit);
  EXPECT_EQ(tokens[3].kind, TokenKind::kKwMin);
  EXPECT_EQ(tokens[4].kind, TokenKind::kKwXor);
  EXPECT_EQ(tokens[5].kind, TokenKind::kKwAnd);
  EXPECT_EQ(tokens[6].kind, TokenKind::kLBrace);
  EXPECT_EQ(tokens[7].kind, TokenKind::kRBrace);
  EXPECT_EQ(tokens[8].kind, TokenKind::kColon);
  EXPECT_EQ(tokens[9].kind, TokenKind::kAt);
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

TEST(LexerTest, NumbersWithSignsAndFractions) {
  const auto tokens = Tokenize("12 -3.5 +0.25");
  ASSERT_GE(tokens.size(), 4u);
  EXPECT_DOUBLE_EQ(tokens[0].number, 12.0);
  EXPECT_DOUBLE_EQ(tokens[1].number, -3.5);
  EXPECT_DOUBLE_EQ(tokens[2].number, 0.25);
}

TEST(LexerTest, StringsWithEscapes) {
  const auto tokens = Tokenize(R"("team \"x\" \\ one")");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "team \"x\" \\ one");
}

TEST(LexerTest, UnterminatedStringIsError) {
  const auto tokens = Tokenize("\"oops");
  EXPECT_EQ(tokens[0].kind, TokenKind::kError);
}

TEST(LexerTest, CommentsAndCommasIgnored) {
  const auto tokens = Tokenize("cpu, ram # trailing comment\ndisk");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "cpu");
  EXPECT_EQ(tokens[1].text, "ram");
  EXPECT_EQ(tokens[2].text, "disk");
}

TEST(LexerTest, TracksLineAndColumn) {
  const auto tokens = Tokenize("a\n  b");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(LexerTest, IdentifiersAllowDashDotUnderscore) {
  const auto tokens = Tokenize("cluster-7.prod_x");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[0].text, "cluster-7.prod_x");
}

TEST(LexerTest, UnexpectedCharacterIsError) {
  const auto tokens = Tokenize("cpu $ ram");
  bool saw_error = false;
  for (const auto& t : tokens) {
    if (t.kind == TokenKind::kError) saw_error = true;
  }
  EXPECT_TRUE(saw_error);
}

// ----------------------------------------------------------------- parser --

TEST(ParserTest, ParsesMinimalBid) {
  const ParseResult r =
      ParseTbbl(R"(bid "t1" limit 100 { cpu@c1: 10 })");
  ASSERT_TRUE(r.ok()) << r.errors[0].ToString();
  ASSERT_EQ(r.statements.size(), 1u);
  const TbblStatement& s = r.statements[0];
  EXPECT_FALSE(s.is_offer);
  EXPECT_EQ(s.name, "t1");
  EXPECT_DOUBLE_EQ(s.amount, 100.0);
  EXPECT_EQ(s.root->kind, TbblKind::kLeaf);
  EXPECT_EQ(s.root->cluster, "c1");
  EXPECT_DOUBLE_EQ(s.root->qty, 10.0);
}

TEST(ParserTest, ParsesNestedXorAnd) {
  const ParseResult r = ParseTbbl(R"(
    bid "t" limit 500 {
      xor {
        and { cpu@a: 10 ram@a: 20 }
        and { cpu@b: 12 ram@b: 20 }
      }
    })");
  ASSERT_TRUE(r.ok()) << r.errors[0].ToString();
  const TbblNode& root = *r.statements[0].root;
  EXPECT_EQ(root.kind, TbblKind::kXor);
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0]->kind, TbblKind::kAnd);
  EXPECT_EQ(root.children[0]->children.size(), 2u);
}

TEST(ParserTest, ParsesOfferWithMin) {
  const ParseResult r =
      ParseTbbl(R"(offer "s" min 30 { disk@c1: 500 })");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.statements[0].is_offer);
  EXPECT_DOUBLE_EQ(r.statements[0].amount, 30.0);
}

TEST(ParserTest, ParsesMultipleStatements) {
  const ParseResult r = ParseTbbl(R"(
    bid "a" limit 1 { cpu@x: 1 }
    offer "b" min 2 { ram@y: 3 }
  )");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.statements.size(), 2u);
}

TEST(ParserTest, RejectsNegativeAmount) {
  const ParseResult r =
      ParseTbbl(R"(bid "t" limit -5 { cpu@c: 1 })");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("non-negative"), std::string::npos);
}

TEST(ParserTest, RejectsUnknownResourceKind) {
  const ParseResult r = ParseTbbl(R"(bid "t" limit 5 { gpu@c: 1 })");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.errors[0].message.find("gpu"), std::string::npos);
}

TEST(ParserTest, RejectsZeroQuantity) {
  const ParseResult r = ParseTbbl(R"(bid "t" limit 5 { cpu@c: 0 })");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, RejectsEmptyCombinator) {
  const ParseResult r = ParseTbbl(R"(bid "t" limit 5 { xor { } })");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, RejectsMissingName) {
  const ParseResult r = ParseTbbl(R"(bid limit 5 { cpu@c: 1 })");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, RejectsWrongAmountKeyword) {
  // "min" belongs to offers, "limit" to bids.
  EXPECT_FALSE(ParseTbbl(R"(bid "t" min 5 { cpu@c: 1 })").ok());
  EXPECT_FALSE(ParseTbbl(R"(offer "t" limit 5 { cpu@c: 1 })").ok());
}

TEST(ParserTest, RejectsUnterminatedBlock) {
  const ParseResult r = ParseTbbl(R"(bid "t" limit 5 { xor { cpu@c: 1 )");
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, ErrorCarriesLocation) {
  const ParseResult r = ParseTbbl("bid \"t\" limit 5 {\n  gpu@c: 1 }");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.errors[0].line, 2);
}

TEST(ParserTest, EmptyInputIsOkAndEmpty) {
  const ParseResult r = ParseTbbl("  # nothing here\n");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.statements.empty());
}

// ------------------------------------------------------------------- AST --

TEST(AstTest, CountAlternativesProductsAndSums) {
  // xor{leaf leaf} = 2; and{xor2, xor2} = 4; xor{and4, leaf} = 5.
  const ParseResult r = ParseTbbl(R"(
    bid "t" limit 1 {
      xor {
        and {
          xor { cpu@a: 1 cpu@b: 1 }
          xor { ram@a: 1 ram@b: 1 }
        }
        disk@c: 1
      }
    })");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.statements[0].root->CountAlternatives(1000), 5u);
}

TEST(AstTest, CountAlternativesSaturatesAtCap) {
  // and of 10 xor-pairs = 1024 alternatives; cap at 100.
  std::string src = "bid \"t\" limit 1 { and {";
  for (int i = 0; i < 10; ++i) {
    src += " xor { cpu@a: 1 cpu@b: 1 }";
  }
  src += " } }";
  const ParseResult r = ParseTbbl(src);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.statements[0].root->CountAlternatives(100), 100u);
  EXPECT_EQ(r.statements[0].root->CountAlternatives(2000), 1024u);
}

TEST(AstTest, TreeSizeCountsNodes) {
  const ParseResult r = ParseTbbl(
      R"(bid "t" limit 1 { xor { cpu@a: 1 cpu@b: 1 } })");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.statements[0].root->TreeSize(), 3u);
}

TEST(AstTest, ToStringRoundTripsThroughParser) {
  const ParseResult r = ParseTbbl(
      R"(bid "t" limit 1 { xor { and { cpu@a: 2 ram@a: 4 } disk@b: 1 } })");
  ASSERT_TRUE(r.ok());
  const std::string rendered = r.statements[0].root->ToString();
  EXPECT_NE(rendered.find("xor {"), std::string::npos);
  EXPECT_NE(rendered.find("cpu@a: 2"), std::string::npos);
}

// -------------------------------------------------------------- flattener --

TEST(FlattenTest, LeafBecomesSingleBundle) {
  PoolRegistry reg;
  const FlattenOutcome out = CompileBids(
      R"(bid "t" limit 10 { cpu@c1: 5 })", reg);
  ASSERT_TRUE(out.ok()) << out.error;
  ASSERT_EQ(out.bids.size(), 1u);
  ASSERT_EQ(out.bids[0].bundles.size(), 1u);
  EXPECT_DOUBLE_EQ(out.bids[0].limit, 10.0);
  const auto id = reg.Find(PoolKey{"c1", ResourceKind::kCpu});
  ASSERT_TRUE(id.has_value());
  EXPECT_DOUBLE_EQ(out.bids[0].bundles[0].QuantityOf(*id), 5.0);
}

TEST(FlattenTest, XorProducesAlternatives) {
  PoolRegistry reg;
  const FlattenOutcome out = CompileBids(
      R"(bid "t" limit 10 { xor { cpu@a: 1 cpu@b: 2 } })", reg);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.bids[0].bundles.size(), 2u);
}

TEST(FlattenTest, AndSumsChildren) {
  PoolRegistry reg;
  const FlattenOutcome out = CompileBids(
      R"(bid "t" limit 10 { and { cpu@a: 1 ram@a: 2 disk@a: 3 } })", reg);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out.bids[0].bundles.size(), 1u);
  EXPECT_EQ(out.bids[0].bundles[0].Size(), 3u);
}

TEST(FlattenTest, AndOfXorsIsCartesianProduct) {
  PoolRegistry reg;
  const FlattenOutcome out = CompileBids(R"(
    bid "t" limit 10 {
      and {
        xor { cpu@a: 1 cpu@b: 1 }
        xor { ram@a: 2 ram@b: 2 }
      }
    })", reg);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.bids[0].bundles.size(), 4u);
}

TEST(FlattenTest, OfferNegatesQuantitiesAndLimit) {
  PoolRegistry reg;
  const FlattenOutcome out = CompileBids(
      R"(offer "s" min 25 { disk@c1: 100 })", reg);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out.bids[0].limit, -25.0);
  const auto id = reg.Find(PoolKey{"c1", ResourceKind::kDisk});
  ASSERT_TRUE(id.has_value());
  EXPECT_DOUBLE_EQ(out.bids[0].bundles[0].QuantityOf(*id), -100.0);
}

TEST(FlattenTest, ExplosionGuardRejectsHugeTrees) {
  std::string src = "bid \"t\" limit 1 { and {";
  for (int i = 0; i < 16; ++i) src += " xor { cpu@a: 1 cpu@b: 1 }";
  src += " } }";
  PoolRegistry reg;
  const FlattenOutcome out = CompileBids(src, reg, /*max_bundles=*/1000);
  EXPECT_FALSE(out.ok());
  EXPECT_NE(out.error.find("more than 1000"), std::string::npos);
}

TEST(FlattenTest, DuplicateAlternativesDeduplicated) {
  PoolRegistry reg;
  const FlattenOutcome out = CompileBids(
      R"(bid "t" limit 1 { xor { cpu@a: 1 cpu@a: 1 } })", reg);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.bids[0].bundles.size(), 1u);
}

TEST(FlattenTest, CancellingAndIsRejected) {
  PoolRegistry reg;
  const FlattenOutcome out = CompileBids(
      R"(bid "t" limit 1 { and { cpu@a: 1 cpu@a: -1 } })", reg);
  EXPECT_FALSE(out.ok());
  EXPECT_NE(out.error.find("cancels"), std::string::npos);
}

TEST(FlattenTest, ParseErrorsPropagate) {
  PoolRegistry reg;
  const FlattenOutcome out = CompileBids("bid gibberish", reg);
  EXPECT_FALSE(out.ok());
  EXPECT_FALSE(out.error.empty());
}

TEST(FlattenTest, UserIdsAssignedInFileOrder) {
  PoolRegistry reg;
  const FlattenOutcome out = CompileBids(R"(
    bid "first" limit 1 { cpu@a: 1 }
    bid "second" limit 2 { cpu@a: 2 }
  )", reg);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.bids[0].user, 0u);
  EXPECT_EQ(out.bids[1].user, 1u);
  EXPECT_EQ(out.bids[0].name, "first");
}

TEST(FlattenTest, SharedRegistryAcrossStatements) {
  PoolRegistry reg;
  const FlattenOutcome out = CompileBids(R"(
    bid "a" limit 1 { cpu@x: 1 }
    bid "b" limit 1 { cpu@x: 2 }
  )", reg);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(reg.size(), 1u);  // Same pool interned once.
}

}  // namespace
}  // namespace pm::bid
