// Tests for pm::exchange: ledger, accounts, endowment, reports and the
// Market orchestrator.
#include <gtest/gtest.h>

#include <cmath>

#include "agents/workload_gen.h"
#include "common/check.h"
#include "exchange/market.h"
#include "exchange/summary.h"

namespace pm::exchange {
namespace {

// ------------------------------------------------------------------ ledger --

TEST(LedgerTest, TransfersMoveMoney) {
  Ledger ledger;
  const AccountId a = ledger.CreateAccount("a", Money::FromDollars(100));
  const AccountId b = ledger.CreateAccount("b");
  EXPECT_EQ(ledger.Transfer(a, b, Money::FromDollars(30), "test"), "");
  EXPECT_EQ(ledger.Balance(a), Money::FromDollars(70));
  EXPECT_EQ(ledger.Balance(b), Money::FromDollars(30));
  ASSERT_EQ(ledger.Journal().size(), 1u);
  EXPECT_EQ(ledger.Journal()[0].memo, "test");
}

TEST(LedgerTest, RejectsOverdraftOnNormalAccounts) {
  Ledger ledger;
  const AccountId a = ledger.CreateAccount("a", Money::FromDollars(10));
  const AccountId b = ledger.CreateAccount("b");
  const std::string status =
      ledger.Transfer(a, b, Money::FromDollars(20), "too much");
  EXPECT_NE(status, "");
  EXPECT_EQ(ledger.Balance(a), Money::FromDollars(10));  // Unchanged.
  EXPECT_TRUE(ledger.Journal().empty());
}

TEST(LedgerTest, NegativeAccountsMayOverdraw) {
  Ledger ledger;
  const AccountId treasury =
      ledger.CreateAccount("treasury", Money(), /*allow_negative=*/true);
  const AccountId t = ledger.CreateAccount("team");
  EXPECT_EQ(ledger.Transfer(treasury, t, Money::FromDollars(500), "mint"),
            "");
  EXPECT_EQ(ledger.Balance(treasury), Money::FromDollars(-500));
}

TEST(LedgerTest, ConservationInvariant) {
  Ledger ledger;
  const AccountId a =
      ledger.CreateAccount("a", Money::FromDollars(100), true);
  const AccountId b = ledger.CreateAccount("b", Money::FromDollars(50));
  const AccountId c = ledger.CreateAccount("c");
  const Money total_before = ledger.TotalBalance();
  ledger.Transfer(a, b, Money::FromDollars(77), "x");
  ledger.Transfer(b, c, Money::FromDollars(17), "y");
  ledger.Transfer(a, c, Money::FromDollars(200), "z");
  EXPECT_EQ(ledger.TotalBalance(), total_before);
}

TEST(LedgerTest, RejectsNegativeAmountAndSelfTransfer) {
  Ledger ledger;
  const AccountId a = ledger.CreateAccount("a", Money::FromDollars(10));
  const AccountId b = ledger.CreateAccount("b");
  EXPECT_NE(ledger.Transfer(a, b, Money::FromDollars(-5), "neg"), "");
  EXPECT_NE(ledger.Transfer(a, a, Money::FromDollars(5), "self"), "");
}

TEST(LedgerTest, UnknownAccountThrows) {
  Ledger ledger;
  const AccountId a = ledger.CreateAccount("a");
  EXPECT_THROW(ledger.Transfer(a, 99, Money::FromDollars(1), "x"),
               pm::CheckFailure);
  EXPECT_THROW(ledger.Balance(99), pm::CheckFailure);
}

TEST(LedgerTest, RenderAccountsListsBalances) {
  Ledger ledger;
  ledger.CreateAccount("search-team", Money::FromDollars(12));
  const std::string out = ledger.RenderAccounts();
  EXPECT_NE(out.find("search-team"), std::string::npos);
  EXPECT_NE(out.find("$12.000000"), std::string::npos);
}

// ---------------------------------------------------------------- accounts --

TEST(MarketAccountsTest, EndowAndCharge) {
  Ledger ledger;
  MarketAccounts accounts(&ledger);
  accounts.Endow("team-a", Money::FromDollars(100), "seed");
  EXPECT_EQ(accounts.BudgetOf("team-a"), Money::FromDollars(100));
  EXPECT_EQ(accounts.ChargeTeam("team-a", Money::FromDollars(40), "buy"),
            "");
  EXPECT_EQ(accounts.BudgetOf("team-a"), Money::FromDollars(60));
  EXPECT_EQ(ledger.Balance(accounts.operator_account()),
            Money::FromDollars(-60));
}

TEST(MarketAccountsTest, UnknownTeamHasZeroBudget) {
  Ledger ledger;
  MarketAccounts accounts(&ledger);
  EXPECT_EQ(accounts.BudgetOf("ghost"), Money());
}

TEST(MarketAccountsTest, PayTeamCredits) {
  Ledger ledger;
  MarketAccounts accounts(&ledger);
  EXPECT_EQ(accounts.PayTeam("seller", Money::FromDollars(25), "sale"),
            "");
  EXPECT_EQ(accounts.BudgetOf("seller"), Money::FromDollars(25));
}

TEST(MarketAccountsTest, ChargeBeyondBudgetFails) {
  Ledger ledger;
  MarketAccounts accounts(&ledger);
  accounts.Endow("t", Money::FromDollars(10), "seed");
  EXPECT_NE(accounts.ChargeTeam("t", Money::FromDollars(11), "x"), "");
}

// --------------------------------------------------------------- endowment --

TEST(EndowmentTest, ProportionalToFootprintValue) {
  PoolRegistry reg;
  for (ResourceKind kind : kAllResourceKinds) reg.Intern("c", kind);
  std::vector<double> prices = {10.0, 1.0, 1.0};

  agents::TeamProfile small;
  small.name = "small";
  small.home_cluster = "c";
  small.footprint = {10.0, 0.0, 0.0};  // Value 100.
  agents::TeamProfile big = small;
  big.name = "big";
  big.footprint = {100.0, 0.0, 0.0};  // Value 1000.

  std::vector<agents::TeamAgent> agents;
  agents.emplace_back(small, prices, 1);
  agents.emplace_back(big, prices, 2);

  EndowmentPolicy policy;
  policy.multiplier = 2.0;
  const std::vector<Money> out =
      ComputeEndowments(reg, agents, prices, policy);
  EXPECT_EQ(out[0], Money::FromDollars(200));
  EXPECT_EQ(out[1], Money::FromDollars(2000));
}

TEST(EndowmentTest, MinimumFloorApplies) {
  PoolRegistry reg;
  for (ResourceKind kind : kAllResourceKinds) reg.Intern("c", kind);
  std::vector<double> prices = {1.0, 1.0, 1.0};
  agents::TeamProfile tiny;
  tiny.name = "tiny";
  tiny.home_cluster = "c";
  tiny.footprint = {0.1, 0.0, 0.0};
  std::vector<agents::TeamAgent> agents;
  agents.emplace_back(tiny, prices, 1);
  EndowmentPolicy policy;
  policy.multiplier = 1.0;
  policy.minimum = Money::FromDollars(100);
  EXPECT_EQ(ComputeEndowments(reg, agents, prices, policy)[0],
            Money::FromDollars(100));
}

// ------------------------------------------------------------------ report --

TEST(ReportTest, PriceRatiosDivideByFixed) {
  AuctionReport report;
  report.fixed_prices = {10.0, 2.0, 0.0};
  report.settled_prices = {15.0, 1.0, 3.0};
  const std::vector<double> ratios = PriceRatios(report);
  EXPECT_DOUBLE_EQ(ratios[0], 1.5);
  EXPECT_DOUBLE_EQ(ratios[1], 0.5);
  EXPECT_TRUE(std::isnan(ratios[2]));
}

TEST(ReportTest, TradePercentilesFilterKindAndSide) {
  AuctionReport report;
  report.trades = {
      TradeSample{ResourceKind::kCpu, true, 20.0, 1.0, "a"},
      TradeSample{ResourceKind::kCpu, false, 80.0, 1.0, "b"},
      TradeSample{ResourceKind::kRam, true, 50.0, 1.0, "c"},
      TradeSample{ResourceKind::kCpu, true, 30.0, 1.0, "d"},
  };
  const auto cpu_bids =
      TradePercentiles(report, ResourceKind::kCpu, true);
  EXPECT_EQ(cpu_bids, (std::vector<double>{20.0, 30.0}));
  const auto boxplot = TradeBoxplot(report, ResourceKind::kCpu, true);
  EXPECT_EQ(boxplot.n, 2u);
  EXPECT_DOUBLE_EQ(boxplot.median, 25.0);
  EXPECT_EQ(TradeBoxplot(report, ResourceKind::kDisk, true).n, 0u);
}

TEST(ReportTest, UtilizationSpreadInPercentagePoints) {
  EXPECT_DOUBLE_EQ(UtilizationSpread({0.2, 0.8}), 30.0);
  EXPECT_DOUBLE_EQ(UtilizationSpread({0.5, 0.5}), 0.0);
}

// ------------------------------------------------------------------ market --

agents::WorkloadConfig SmallWorldConfig() {
  agents::WorkloadConfig config;
  config.num_clusters = 6;
  config.num_teams = 24;
  config.min_machines_per_cluster = 15;
  config.max_machines_per_cluster = 30;
  config.seed = 31;
  return config;
}

MarketConfig FastMarketConfig() {
  MarketConfig config;
  config.auction.alpha = 0.4;
  config.auction.delta = 0.08;
  config.auction.max_rounds = 30000;
  return config;
}

TEST(MarketTest, RunAuctionProducesCoherentReport) {
  agents::World world = GenerateWorld(SmallWorldConfig());
  Market market(&world.fleet, &world.agents, world.fixed_prices,
                FastMarketConfig());
  const AuctionReport report = market.RunAuction();
  EXPECT_TRUE(report.converged);
  EXPECT_GT(report.num_bids, 0u);
  EXPECT_GE(report.num_bids, report.num_winners);
  EXPECT_EQ(report.settled_prices.size(), world.fleet.NumPools());
  EXPECT_EQ(report.reserve_prices.size(), world.fleet.NumPools());
  // Settled prices never below reserve.
  for (std::size_t r = 0; r < report.settled_prices.size(); ++r) {
    EXPECT_GE(report.settled_prices[r], report.reserve_prices[r] - 1e-9);
  }
  EXPECT_EQ(market.AuctionCount(), 1);
}

TEST(MarketTest, EndowmentsHappenOnceAndBudgetsAreSpent) {
  agents::World world = GenerateWorld(SmallWorldConfig());
  Market market(&world.fleet, &world.agents, world.fixed_prices,
                FastMarketConfig());
  market.RunAuction();
  Money total_team_budget;
  for (const auto& agent : world.agents) {
    const Money b = market.TeamBudget(agent.profile().name);
    EXPECT_GE(b, Money()) << agent.profile().name;
    total_team_budget += b;
  }
  // Ledger conservation: treasury + teams == 0 overall.
  EXPECT_EQ(market.ledger().TotalBalance(), Money());
  const std::size_t journal_after_one =
      market.ledger().Journal().size();
  market.RunAuction();
  // No second endowment: no new journal entry starts with "initial".
  for (std::size_t i = journal_after_one;
       i < market.ledger().Journal().size(); ++i) {
    EXPECT_NE(market.ledger().Journal()[i].memo.rfind("initial", 0), 0u);
  }
}

TEST(MarketTest, PhysicalStateChangesWithTrades) {
  agents::World world = GenerateWorld(SmallWorldConfig());
  Market market(&world.fleet, &world.agents, world.fixed_prices,
                FastMarketConfig());
  const std::size_t jobs_before = world.fleet.AllJobs().size();
  const AuctionReport report = market.RunAuction();
  if (report.num_winners > 0) {
    EXPECT_GT(report.jobs_added + report.jobs_removed +
                  report.placement_failures,
              0u);
  }
  // The fleet stays structurally sound: utilizations within [0, 1].
  for (double u : world.fleet.UtilizationVector()) {
    EXPECT_GE(u, -1e-9);
    EXPECT_LE(u, 1.0 + 1e-9);
  }
  (void)jobs_before;
}

TEST(MarketTest, ReportsTradeSamplesForSettledBundles) {
  agents::World world = GenerateWorld(SmallWorldConfig());
  Market market(&world.fleet, &world.agents, world.fixed_prices,
                FastMarketConfig());
  const AuctionReport report = market.RunAuction();
  if (report.num_winners > 0) {
    EXPECT_FALSE(report.trades.empty());
    for (const TradeSample& t : report.trades) {
      EXPECT_GE(t.util_percentile, 0.0);
      EXPECT_LE(t.util_percentile, 100.0);
      EXPECT_GT(t.qty, 0.0);
      EXPECT_FALSE(t.team.empty());
    }
  }
}

TEST(MarketTest, PreliminaryPricesDoNotBind) {
  agents::World world = GenerateWorld(SmallWorldConfig());
  Market market(&world.fleet, &world.agents, world.fixed_prices,
                FastMarketConfig());
  PoolRegistry& reg_hack =
      const_cast<PoolRegistry&>(world.fleet.registry());
  (void)reg_hack;
  std::vector<bid::Bid> bids;
  bid::Bid b;
  b.name = "probe";
  b.bundles = {bid::Bundle({bid::BundleItem{0, 1.0}})};
  b.limit = 1e6;
  bids.push_back(std::move(b));
  const std::vector<double> prelim =
      market.ComputePreliminaryPrices(std::move(bids));
  EXPECT_EQ(prelim.size(), world.fleet.NumPools());
  EXPECT_EQ(market.AuctionCount(), 0);       // Nothing bound.
  EXPECT_TRUE(market.ledger().Journal().empty());
}

TEST(MarketTest, AwardRecordsMatchWinners) {
  agents::World world = GenerateWorld(SmallWorldConfig());
  Market market(&world.fleet, &world.agents, world.fixed_prices,
                FastMarketConfig());
  const AuctionReport report = market.RunAuction();
  EXPECT_EQ(report.awards.size(), report.num_winners);
  double total_payment = 0.0;
  for (const AwardRecord& award : report.awards) {
    EXPECT_FALSE(award.team.empty());
    EXPECT_FALSE(award.bid_name.empty());
    EXPECT_GE(award.bundle_index, 0);
    // Bid names carry the originating team as a prefix.
    EXPECT_EQ(award.bid_name.rfind(award.team, 0), 0u)
        << award.bid_name << " vs " << award.team;
    total_payment += award.payment;
  }
  EXPECT_NEAR(total_payment, report.operator_revenue, 1e-6);
}

TEST(MarketTest, MoveRecordsReferenceRealClusters) {
  agents::World world = GenerateWorld(SmallWorldConfig());
  Market market(&world.fleet, &world.agents, world.fixed_prices,
                FastMarketConfig());
  for (int i = 0; i < 3; ++i) {
    const AuctionReport report = market.RunAuction();
    for (const MoveRecord& move : report.moves) {
      EXPECT_FALSE(move.team.empty());
      if (!move.from_cluster.empty()) {
        EXPECT_TRUE(world.fleet.HasCluster(move.from_cluster));
      }
      if (!move.to_cluster.empty()) {
        EXPECT_TRUE(world.fleet.HasCluster(move.to_cluster));
      }
      EXPECT_FALSE(move.from_cluster.empty() &&
                   move.to_cluster.empty());
    }
  }
}

TEST(MarketTest, HistoryAccumulates) {
  agents::World world = GenerateWorld(SmallWorldConfig());
  Market market(&world.fleet, &world.agents, world.fixed_prices,
                FastMarketConfig());
  market.RunAuction();
  market.RunAuction();
  market.RunAuction();
  EXPECT_EQ(market.History().size(), 3u);
  EXPECT_EQ(market.History()[2].auction_index, 2);
}

TEST(MarketTest, SupplyFractionValidated) {
  agents::World world = GenerateWorld(SmallWorldConfig());
  MarketConfig config = FastMarketConfig();
  config.supply_fraction = 0.0;
  EXPECT_THROW(Market(&world.fleet, &world.agents, world.fixed_prices,
                      config),
               pm::CheckFailure);
}

// ----------------------------------------------------------------- summary --

TEST(SummaryTest, PreMarketSummaryShowsReserves) {
  agents::World world = GenerateWorld(SmallWorldConfig());
  Market market(&world.fleet, &world.agents, world.fixed_prices,
                FastMarketConfig());
  const std::string out = RenderMarketSummary(market);
  EXPECT_NE(out.find("MARKET SUMMARY"), std::string::npos);
  EXPECT_NE(out.find("pre-market"), std::string::npos);
  EXPECT_NE(out.find("r01"), std::string::npos);
}

TEST(SummaryTest, PostAuctionSummaryShowsSettleRate) {
  agents::World world = GenerateWorld(SmallWorldConfig());
  Market market(&world.fleet, &world.agents, world.fixed_prices,
                FastMarketConfig());
  market.RunAuction();
  const std::string out = RenderMarketSummary(market);
  EXPECT_NE(out.find("after auction #1"), std::string::npos);
  EXPECT_NE(out.find("settle rate"), std::string::npos);
}

TEST(SummaryTest, BidPreviewListsComponents) {
  agents::World world = GenerateWorld(SmallWorldConfig());
  Market market(&world.fleet, &world.agents, world.fixed_prices,
                FastMarketConfig());
  const std::string out = RenderBidPreview(
      market, "r01", cluster::TaskShape{10.0, 40.0, 5.0});
  EXPECT_NE(out.find("BID ENTRY"), std::string::npos);
  EXPECT_NE(out.find("cpu"), std::string::npos);
  EXPECT_NE(out.find("covering amount"), std::string::npos);
}

}  // namespace
}  // namespace pm::exchange
