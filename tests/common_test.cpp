// Tests for pm::common: pool registry, money, RNG, thread pool, tables,
// charts, check macros.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "common/ascii_chart.h"
#include "common/check.h"
#include "common/money.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/types.h"

namespace pm {
namespace {

// ---------------------------------------------------------------- check --

TEST(CheckTest, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(PM_CHECK(1 + 1 == 2));
}

TEST(CheckTest, FailingConditionThrowsCheckFailure) {
  EXPECT_THROW(PM_CHECK(false), CheckFailure);
}

TEST(CheckTest, MessageIsIncluded) {
  try {
    PM_CHECK_MSG(false, "index " << 42 << " bad");
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("index 42 bad"),
              std::string::npos);
  }
}

// ------------------------------------------------------- resource kinds --

TEST(ResourceKindTest, RoundTripsThroughStrings) {
  for (ResourceKind kind : kAllResourceKinds) {
    const auto parsed = ParseResourceKind(ToString(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(ResourceKindTest, RejectsUnknownNames) {
  EXPECT_FALSE(ParseResourceKind("gpu").has_value());
  EXPECT_FALSE(ParseResourceKind("CPU").has_value());
  EXPECT_FALSE(ParseResourceKind("").has_value());
}

TEST(ResourceKindTest, UnitsAreDistinct) {
  std::set<std::string_view> units;
  for (ResourceKind kind : kAllResourceKinds) units.insert(UnitOf(kind));
  EXPECT_EQ(units.size(), 3u);
}

// ----------------------------------------------------------- pool registry --

TEST(PoolRegistryTest, InternAssignsDenseIds) {
  PoolRegistry reg;
  const PoolId a = reg.Intern("c1", ResourceKind::kCpu);
  const PoolId b = reg.Intern("c1", ResourceKind::kRam);
  const PoolId c = reg.Intern("c2", ResourceKind::kCpu);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(c, 2u);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(PoolRegistryTest, InternIsIdempotent) {
  PoolRegistry reg;
  const PoolId a = reg.Intern("c1", ResourceKind::kCpu);
  const PoolId again = reg.Intern("c1", ResourceKind::kCpu);
  EXPECT_EQ(a, again);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(PoolRegistryTest, FindDistinguishesKinds) {
  PoolRegistry reg;
  reg.Intern("c1", ResourceKind::kCpu);
  EXPECT_TRUE(reg.Find(PoolKey{"c1", ResourceKind::kCpu}).has_value());
  EXPECT_FALSE(reg.Find(PoolKey{"c1", ResourceKind::kRam}).has_value());
  EXPECT_FALSE(reg.Find(PoolKey{"c2", ResourceKind::kCpu}).has_value());
}

TEST(PoolRegistryTest, KeyOfReturnsInternedKey) {
  PoolRegistry reg;
  const PoolId id = reg.Intern("cluster-7", ResourceKind::kDisk);
  EXPECT_EQ(reg.KeyOf(id).cluster, "cluster-7");
  EXPECT_EQ(reg.KeyOf(id).kind, ResourceKind::kDisk);
  EXPECT_EQ(reg.NameOf(id), "disk@cluster-7");
}

TEST(PoolRegistryTest, KeyOfOutOfRangeThrows) {
  PoolRegistry reg;
  EXPECT_THROW(reg.KeyOf(0), CheckFailure);
}

TEST(PoolRegistryTest, PoolsInClusterAndOfKind) {
  PoolRegistry reg;
  for (const char* cl : {"a", "b"}) {
    for (ResourceKind kind : kAllResourceKinds) reg.Intern(cl, kind);
  }
  EXPECT_EQ(reg.PoolsInCluster("a").size(), 3u);
  EXPECT_EQ(reg.PoolsOfKind(ResourceKind::kCpu).size(), 2u);
  EXPECT_EQ(reg.Clusters(), (std::vector<std::string>{"a", "b"}));
}

// ------------------------------------------------------------------ money --

TEST(MoneyTest, DefaultIsZero) {
  EXPECT_TRUE(Money().IsZero());
  EXPECT_EQ(Money().micros(), 0);
}

TEST(MoneyTest, FromDollarsExact) {
  EXPECT_EQ(Money::FromDollars(3).micros(), 3'000'000);
  EXPECT_EQ(Money::FromDollars(-2).micros(), -2'000'000);
}

TEST(MoneyTest, RoundingHalfAwayFromZero) {
  EXPECT_EQ(Money::FromDollarsRounded(0.0000005).micros(), 1);
  EXPECT_EQ(Money::FromDollarsRounded(-0.0000005).micros(), -1);
  EXPECT_EQ(Money::FromDollarsRounded(1.25).micros(), 1'250'000);
}

TEST(MoneyTest, NonFiniteConversionThrows) {
  EXPECT_THROW(Money::FromDollarsRounded(
                   std::numeric_limits<double>::quiet_NaN()),
               CheckFailure);
  EXPECT_THROW(Money::FromDollarsRounded(
                   std::numeric_limits<double>::infinity()),
               CheckFailure);
}

TEST(MoneyTest, ArithmeticIsExact) {
  Money m = Money::FromDollars(1);
  for (int i = 0; i < 1000; ++i) m += Money::FromMicros(1);
  EXPECT_EQ(m.micros(), 1'001'000);
  m -= Money::FromMicros(1000);
  EXPECT_EQ(m, Money::FromDollars(1));
}

TEST(MoneyTest, ComparisonAndNegation) {
  EXPECT_LT(Money::FromDollars(1), Money::FromDollars(2));
  EXPECT_EQ(-Money::FromDollars(5), Money::FromDollars(-5));
  EXPECT_TRUE(Money::FromDollars(-1).IsNegative());
}

TEST(MoneyTest, ToStringFormats) {
  EXPECT_EQ(Money::FromDollars(12).ToString(), "$12.000000");
  EXPECT_EQ(Money::FromMicros(-500000).ToString(), "-$0.500000");
}

TEST(MoneyTest, IntegerScaling) {
  EXPECT_EQ(Money::FromDollars(3) * 4, Money::FromDollars(12));
  EXPECT_EQ(2 * Money::FromMicros(5), Money::FromMicros(10));
}

// -------------------------------------------------------------------- rng --

TEST(RngTest, DeterministicAcrossInstances) {
  RandomStream a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextRaw(), b.NextRaw());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  RandomStream a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextRaw() == b.NextRaw()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, SubstreamsAreIndependent) {
  RandomStream s0 = RandomStream::Substream(7, 0);
  RandomStream s1 = RandomStream::Substream(7, 1);
  EXPECT_NE(s0.NextRaw(), s1.NextRaw());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  RandomStream rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  RandomStream rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-3.0, 7.5);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 7.5);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  RandomStream rng(11);
  std::array<int, 6> counts{};
  for (int i = 0; i < 60000; ++i) {
    const auto v = rng.UniformInt(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 500);  // ~4.5 sigma.
  }
}

TEST(RngTest, UniformIntBadRangeThrows) {
  RandomStream rng(1);
  EXPECT_THROW(rng.UniformInt(3, 2), CheckFailure);
}

TEST(RngTest, NormalMomentsMatch) {
  RandomStream rng(21);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, ExponentialMeanMatches) {
  RandomStream rng(33);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ParetoRespectsScale) {
  RandomStream rng(44);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.Pareto(3.0, 2.0), 3.0);
  }
}

TEST(RngTest, BernoulliProbabilities) {
  RandomStream rng(55);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
  EXPECT_FALSE(RandomStream(1).Bernoulli(0.0));
  EXPECT_TRUE(RandomStream(1).Bernoulli(1.0));
}

TEST(RngTest, PickWeightedFollowsWeights) {
  RandomStream rng(66);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 40000; ++i) {
    ++counts[rng.PickWeighted(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / static_cast<double>(counts[0]), 3.0, 0.2);
}

TEST(RngTest, PickWeightedRejectsAllZero) {
  RandomStream rng(1);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_THROW(rng.PickWeighted(weights), CheckFailure);
}

TEST(RngTest, ShuffleIsPermutation) {
  RandomStream rng(77);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

// -------------------------------------------------------------- threadpool --

TEST(ThreadPoolTest, RunsSubmittedWork) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, MinimumOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(1000);
  ParallelFor(&pool, 0, touched.size(),
              [&](std::size_t i) { ++touched[i]; });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelForTest, WorksWithoutPool) {
  int sum = 0;
  ParallelFor(nullptr, 3, 7, [&](std::size_t i) {
    sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum, 3 + 4 + 5 + 6);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(&pool, 5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, RethrowsFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(ParallelFor(&pool, 0, 100,
                           [](std::size_t i) {
                             if (i == 31) throw std::runtime_error("x");
                           }),
               std::runtime_error);
}

TEST(ThreadPoolTest, PostRunsFireAndForget) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::promise<void> all_done;
  for (int i = 0; i < 64; ++i) {
    pool.Post([&counter, &all_done] {
      if (++counter == 64) all_done.set_value();
    });
  }
  all_done.get_future().wait();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ParallelForTest, ManyChunksCoverLargeRangeExactlyOnce) {
  // A range far larger than the chunk size exercises the atomic-counter
  // dispatch across many claim cycles (and the caller-participation
  // path).
  ThreadPool pool(4);
  std::vector<std::atomic<int>> touched(100000);
  ParallelFor(&pool, 0, touched.size(),
              [&](std::size_t i) { ++touched[i]; });
  for (const auto& t : touched) ASSERT_EQ(t.load(), 1);
}

TEST(ParallelForTest, ExceptionDoesNotAbortOtherChunks) {
  // An exception abandons the remainder of its own chunk only; every
  // other chunk still runs before the rethrow reaches the caller.
  ThreadPool pool(4);
  std::atomic<int> visited{0};
  bool threw = false;
  try {
    ParallelFor(&pool, 0, 10000, [&](std::size_t i) {
      if (i == 0) throw std::runtime_error("first");
      ++visited;
    });
  } catch (const std::runtime_error&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  // Chunk 0 lost at most its own tail; all other chunks completed.
  const std::size_t chunk_upper_bound = 10000 / 4;  // Conservative.
  EXPECT_GE(static_cast<std::size_t>(visited.load()),
            10000 - chunk_upper_bound);
}

TEST(ParallelForTest, RethrowsWithSingleIterationRange) {
  ThreadPool pool(4);
  EXPECT_THROW(
      ParallelFor(&pool, 7, 8,
                  [](std::size_t) { throw std::runtime_error("solo"); }),
      std::runtime_error);
}

TEST(ParallelForTest, EmptyRangeWithReversedBoundsIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(&pool, 9, 4, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

// ------------------------------------------------------------------ tables --

TEST(TextTableTest, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha |     1 |"), std::string::npos);
  EXPECT_NE(out.find("| b     |    22 |"), std::string::npos);
}

TEST(TextTableTest, RowArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), CheckFailure);
}

TEST(TextTableTest, RuleSeparatesSections) {
  TextTable t({"x"});
  t.AddRow({"1"});
  t.AddRule();
  t.AddRow({"2"});
  const std::string out = t.Render();
  // Header rule + top + bottom + explicit = 4 rules.
  std::size_t rules = 0, pos = 0;
  while ((pos = out.find("+--", pos)) != std::string::npos) {
    ++rules;
    pos += 3;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(FormatTest, FormatsNumbers) {
  EXPECT_EQ(FormatF(3.14159, 2), "3.14");
  EXPECT_EQ(FormatPct(0.618, 1), "61.8%");
}

TEST(CsvWriterTest, EscapesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter csv(os);
  csv.WriteRow({"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(os.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

// ------------------------------------------------------------------ charts --

TEST(AsciiChartTest, LineChartContainsGlyphsAndLegend) {
  ChartSeries s;
  s.label = "phi";
  s.glyph = '*';
  for (int i = 0; i <= 10; ++i) {
    s.xs.push_back(i);
    s.ys.push_back(i * i);
  }
  ChartOptions opt;
  opt.title = "test-chart";
  const std::string out = RenderLineChart({s}, opt);
  EXPECT_NE(out.find("test-chart"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("phi"), std::string::npos);
}

TEST(AsciiChartTest, BarChartShowsReference) {
  ChartOptions opt;
  const std::string out = RenderBarChart(
      {{"r1", 0.5}, {"r2", 1.8}}, opt, 1.0);
  EXPECT_NE(out.find("r1"), std::string::npos);
  EXPECT_NE(out.find("reference = 1.00"), std::string::npos);
}

TEST(AsciiChartTest, BoxplotShowsMedianMarker) {
  BoxplotSpec box;
  box.label = "cpu-bids";
  box.whisker_lo = 10;
  box.q1 = 20;
  box.median = 30;
  box.q3 = 45;
  box.whisker_hi = 60;
  box.outliers = {95.0};
  ChartOptions opt;
  const std::string out = RenderBoxplots({box}, opt);
  EXPECT_NE(out.find('M'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find("cpu-bids"), std::string::npos);
}

TEST(AsciiChartTest, DegenerateRangeDoesNotCrash) {
  ChartSeries s;
  s.label = "flat";
  s.xs = {1.0, 2.0, 3.0};
  s.ys = {5.0, 5.0, 5.0};
  EXPECT_NO_THROW(RenderLineChart({s}, ChartOptions{}));
}

}  // namespace
}  // namespace pm
