// Tests for pm::auction: proxies, increment policies, the ascending clock
// auction (Algorithm 1), settlement and the SYSTEM-constraint audit.
#include <gtest/gtest.h>

#include <cmath>

#include "auction/clock_auction.h"
#include "auction/settlement.h"
#include "auction/system_check.h"
#include "common/check.h"
#include "common/thread_pool.h"

namespace pm::auction {
namespace {

using bid::Bid;
using bid::Bundle;
using bid::BundleItem;

Bid MakeBid(UserId user, std::vector<Bundle> bundles, double limit,
            std::string name = "") {
  Bid b;
  b.user = user;
  b.name = name.empty() ? "u" + std::to_string(user) : std::move(name);
  b.bundles = std::move(bundles);
  b.limit = limit;
  return b;
}

// ------------------------------------------------------------------ proxy --

TEST(ProxyTest, PicksCheapestBundle) {
  const Bid b = MakeBid(0, {Bundle({{0, 1.0}}), Bundle({{1, 1.0}})}, 100.0);
  BidderProxy proxy(&b);
  const std::vector<double> prices = {5.0, 3.0};
  const ProxyDecision d = proxy.Evaluate(prices);
  EXPECT_EQ(d.bundle_index, 1);
  EXPECT_DOUBLE_EQ(d.cost, 3.0);
}

TEST(ProxyTest, DropsOutAboveLimit) {
  const Bid b = MakeBid(0, {Bundle({{0, 2.0}})}, 10.0);
  BidderProxy proxy(&b);
  const std::vector<double> cheap = {4.9};
  const std::vector<double> expensive = {5.1};
  EXPECT_TRUE(proxy.Evaluate(cheap).Active());
  EXPECT_FALSE(proxy.Evaluate(expensive).Active());
}

TEST(ProxyTest, ExactLimitIsAffordable) {
  const Bid b = MakeBid(0, {Bundle({{0, 1.0}})}, 5.0);
  BidderProxy proxy(&b);
  const std::vector<double> prices = {5.0};
  EXPECT_TRUE(proxy.Evaluate(prices).Active());
}

TEST(ProxyTest, TieBreaksTowardLowestIndex) {
  const Bid b =
      MakeBid(0, {Bundle({{0, 1.0}}), Bundle({{1, 1.0}})}, 100.0);
  BidderProxy proxy(&b);
  const std::vector<double> prices = {2.0, 2.0};
  EXPECT_EQ(proxy.Evaluate(prices).bundle_index, 0);
}

TEST(ProxyTest, SellerStaysInWhileRevenueSufficient) {
  // Sells 5 units, wants at least 10: active while price >= 2.
  const Bid b = MakeBid(0, {Bundle({{0, -5.0}})}, -10.0);
  BidderProxy proxy(&b);
  const std::vector<double> good = {2.5};
  const std::vector<double> bad = {1.5};
  EXPECT_TRUE(proxy.Evaluate(good).Active());
  EXPECT_DOUBLE_EQ(proxy.Evaluate(good).cost, -12.5);
  EXPECT_FALSE(proxy.Evaluate(bad).Active());
}

TEST(ProxyTest, SellerPicksMostLucrativeBundle) {
  const Bid b =
      MakeBid(0, {Bundle({{0, -1.0}}), Bundle({{1, -1.0}})}, -1.0);
  BidderProxy proxy(&b);
  const std::vector<double> prices = {3.0, 8.0};
  // argmin cost: selling in pool 1 yields cost -8 < -3.
  EXPECT_EQ(proxy.Evaluate(prices).bundle_index, 1);
}

// ---------------------------------------------------------------- policies --

TEST(IncrementPolicyTest, AdditiveIsProportional) {
  auto policy = MakeAdditivePolicy(0.5);
  const std::vector<double> excess = {2.0, -1.0, 0.0};
  const std::vector<double> prices = {1.0, 1.0, 1.0};
  std::vector<double> step(3);
  policy->ComputeStep(excess, prices, step);
  EXPECT_DOUBLE_EQ(step[0], 1.0);
  EXPECT_DOUBLE_EQ(step[1], 0.0);  // No step on satisfied pools.
  EXPECT_DOUBLE_EQ(step[2], 0.0);
}

TEST(IncrementPolicyTest, CappedAppliesEquation3) {
  auto policy = MakeCappedPolicy(1.0, 0.25);
  const std::vector<double> excess = {10.0, 0.1};
  const std::vector<double> prices = {1.0, 1.0};
  std::vector<double> step(2);
  policy->ComputeStep(excess, prices, step);
  EXPECT_DOUBLE_EQ(step[0], 0.25);  // min(10, 0.25).
  EXPECT_DOUBLE_EQ(step[1], 0.1);
}

TEST(IncrementPolicyTest, RelativeCapScalesWithPrice) {
  auto policy = MakeRelativeCappedPolicy(10.0, 0.10, 1e-3);
  const std::vector<double> excess = {5.0, 5.0};
  const std::vector<double> prices = {100.0, 0.0};
  std::vector<double> step(2);
  policy->ComputeStep(excess, prices, step);
  EXPECT_DOUBLE_EQ(step[0], 10.0);  // Cap 0.1·100 = 10.
  EXPECT_DOUBLE_EQ(step[1], 1e-3);  // Floor keeps zero prices moving.
}

TEST(IncrementPolicyTest, CostNormalizedScalesByRelativeCost) {
  // Costs 10 and 2: mean 6 → weights 10/6 and 2/6.
  auto policy = MakeCostNormalizedPolicy(1.0, 0.6, {10.0, 2.0});
  const std::vector<double> excess = {100.0, 100.0};  // Saturate at δ.
  const std::vector<double> prices = {1.0, 1.0};
  std::vector<double> step(2);
  policy->ComputeStep(excess, prices, step);
  EXPECT_NEAR(step[0] / step[1], 5.0, 1e-12);  // Cost ratio preserved.
}

TEST(IncrementPolicyTest, CostNormalizedSizeMismatchThrows) {
  auto policy = MakeCostNormalizedPolicy(1.0, 0.5, {1.0, 2.0});
  const std::vector<double> excess = {1.0};
  const std::vector<double> prices = {1.0};
  std::vector<double> step(1);
  EXPECT_THROW(policy->ComputeStep(excess, prices, step), CheckFailure);
}

TEST(IncrementPolicyTest, MultiplicativeGrowsGeometrically) {
  auto policy = MakeMultiplicativePolicy(1.0, 0.5, 0.01);
  const std::vector<double> excess = {10.0};
  const std::vector<double> prices = {4.0};
  std::vector<double> step(1);
  policy->ComputeStep(excess, prices, step);
  EXPECT_DOUBLE_EQ(step[0], 2.0);  // 4 · min(10, 0.5).
}

TEST(IncrementPolicyTest, InvalidParametersThrow) {
  EXPECT_THROW(MakeAdditivePolicy(0.0), CheckFailure);
  EXPECT_THROW(MakeCappedPolicy(1.0, -0.1), CheckFailure);
  EXPECT_THROW(MakeCostNormalizedPolicy(1.0, 0.5, {1.0, 0.0}),
               CheckFailure);
}

// ------------------------------------------------------------ clock auction --

ClockAuctionConfig FastConfig() {
  ClockAuctionConfig config;
  config.alpha = 0.5;
  config.delta = 0.10;
  config.policy_kind = ClockAuctionConfig::PolicyKind::kRelativeCapped;
  config.step_floor = 0.01;
  return config;
}

TEST(ClockAuctionTest, AmpleSupplySettlesAtReserve) {
  std::vector<Bid> bids = {MakeBid(0, {Bundle({{0, 5.0}})}, 100.0)};
  ClockAuction auction(bids, {10.0}, {2.0});
  const ClockAuctionResult r = auction.Run(FastConfig());
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.rounds, 1);
  EXPECT_DOUBLE_EQ(r.prices[0], 2.0);
  EXPECT_TRUE(r.decisions[0].Active());
}

TEST(ClockAuctionTest, ScarcityRaisesPriceUntilLoserDrops) {
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, 1.0}})}, 5.0, "strong"),
      MakeBid(1, {Bundle({{0, 1.0}})}, 3.0, "weak"),
  };
  ClockAuction auction(bids, {1.0}, {1.0});
  const ClockAuctionResult r = auction.Run(FastConfig());
  ASSERT_TRUE(r.converged);
  EXPECT_TRUE(r.decisions[0].Active());
  EXPECT_FALSE(r.decisions[1].Active());
  EXPECT_GT(r.prices[0], 3.0);  // Above the loser's limit …
  EXPECT_LE(r.prices[0], 5.0 + 1e-9);  // … at or below the winner's.
  EXPECT_LE(r.excess[0], 1e-9);
}

TEST(ClockAuctionTest, ExactTieBothLose) {
  // §III.B: with one unit and two $1.00 bidders, the only fair outcome is
  // that both lose once the price passes 1.00.
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, 1.0}})}, 1.0),
      MakeBid(1, {Bundle({{0, 1.0}})}, 1.0),
  };
  ClockAuction auction(bids, {1.0}, {0.5});
  const ClockAuctionResult r = auction.Run(FastConfig());
  ASSERT_TRUE(r.converged);
  EXPECT_FALSE(r.decisions[0].Active());
  EXPECT_FALSE(r.decisions[1].Active());
}

TEST(ClockAuctionTest, SellerExtendsSupply) {
  // No operator supply; a seller provides 5 units, a buyer takes 3.
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, 3.0}})}, 30.0, "buyer"),
      MakeBid(1, {Bundle({{0, -5.0}})}, -2.0, "seller"),
  };
  ClockAuction auction(bids, {0.0}, {1.0});
  const ClockAuctionResult r = auction.Run(FastConfig());
  ASSERT_TRUE(r.converged);
  EXPECT_TRUE(r.decisions[0].Active());
  EXPECT_TRUE(r.decisions[1].Active());
  EXPECT_LE(r.excess[0], 1e-9);
}

TEST(ClockAuctionTest, XorUserSwitchesToCheaperAlternative) {
  // User is indifferent between pools; congestion in pool 0 must push
  // them to pool 1.
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, 1.0}}), Bundle({{1, 1.0}})}, 50.0, "flex"),
      MakeBid(1, {Bundle({{0, 1.0}})}, 50.0, "stuck"),
  };
  ClockAuction auction(bids, {1.0, 1.0}, {1.0, 1.0});
  const ClockAuctionResult r = auction.Run(FastConfig());
  ASSERT_TRUE(r.converged);
  ASSERT_TRUE(r.decisions[0].Active());
  ASSERT_TRUE(r.decisions[1].Active());
  EXPECT_EQ(r.decisions[0].bundle_index, 1);  // Flex user moved.
  EXPECT_EQ(r.decisions[1].bundle_index, 0);
}

TEST(ClockAuctionTest, PricesNeverFallBelowReserve) {
  std::vector<Bid> bids = {MakeBid(0, {Bundle({{1, 2.0}})}, 100.0)};
  ClockAuction auction(bids, {5.0, 5.0}, {3.0, 7.0});
  const ClockAuctionResult r = auction.Run(FastConfig());
  EXPECT_GE(r.prices[0], 3.0);
  EXPECT_GE(r.prices[1], 7.0);
}

TEST(ClockAuctionTest, OpposingTradersCanCycleForever) {
  // §III.C.3's contrived case: two traders leapfrogging each other's
  // price. T1 swaps A→B while p_A ≤ p_B; T2 swaps B→A while p_B ≤ p_A.
  // With additive steps the prices chase each other without ever
  // clearing; the round cap reports non-convergence.
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, 1.0}, {1, -1.0}})}, 0.0, "swap-ab"),
      MakeBid(1, {Bundle({{0, -1.0}, {1, 1.0}})}, 0.0, "swap-ba"),
  };
  ClockAuction auction(bids, {0.0, 0.0}, {0.0, 0.5});
  ClockAuctionConfig config;
  config.policy_kind = ClockAuctionConfig::PolicyKind::kAdditive;
  config.alpha = 0.2;
  config.normalize_excess = true;
  config.max_rounds = 500;
  const ClockAuctionResult r = auction.Run(config);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.rounds, 500);
}

TEST(ClockAuctionTest, TrajectoryRecordsMonotonePrices) {
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, 1.0}})}, 9.0),
      MakeBid(1, {Bundle({{0, 1.0}})}, 7.0),
  };
  ClockAuction auction(bids, {1.0}, {1.0});
  ClockAuctionConfig config = FastConfig();
  config.record_trajectory = true;
  const ClockAuctionResult r = auction.Run(config);
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(static_cast<int>(r.trajectory.size()), r.rounds);
  for (std::size_t t = 1; t < r.trajectory.size(); ++t) {
    EXPECT_GE(r.trajectory[t].prices[0], r.trajectory[t - 1].prices[0]);
  }
}

TEST(ClockAuctionTest, BisectionTightensClearingPrice) {
  // Winner at π=50, loser at π=30: the price only needs to pass 30.
  auto make_bids = [] {
    return std::vector<Bid>{
        MakeBid(0, {Bundle({{0, 1.0}})}, 50.0),
        MakeBid(1, {Bundle({{0, 1.0}})}, 30.0),
    };
  };
  ClockAuctionConfig coarse;
  coarse.policy_kind = ClockAuctionConfig::PolicyKind::kCapped;
  coarse.alpha = 1.0;
  coarse.delta = 8.0;  // Deliberately huge steps.
  coarse.normalize_excess = true;

  ClockAuction auction(make_bids(), {1.0}, {1.0});
  const ClockAuctionResult plain = auction.Run(coarse);
  ClockAuctionConfig with_bisect = coarse;
  with_bisect.intra_round_bisection = true;
  const ClockAuctionResult tight = auction.Run(with_bisect);

  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(tight.converged);
  EXPECT_TRUE(tight.decisions[0].Active());
  EXPECT_GT(tight.prices[0], 30.0 - 1e-6);
  EXPECT_LE(tight.prices[0], plain.prices[0] + 1e-9);
  EXPECT_LT(tight.prices[0], 30.0 + 1.0);  // Near the marginal value.
  EXPECT_GT(tight.demand_evaluations, plain.demand_evaluations);
}

TEST(ClockAuctionTest, ParallelEvaluationMatchesSerial) {
  std::vector<Bid> bids;
  for (UserId u = 0; u < 40; ++u) {
    bids.push_back(MakeBid(
        u, {Bundle({{u % 4, 1.0 + u % 3}}), Bundle({{(u + 1) % 4, 2.0}})},
        10.0 + u));
  }
  ClockAuction auction(bids, {8.0, 8.0, 8.0, 8.0},
                       {1.0, 1.0, 1.0, 1.0});
  const ClockAuctionResult serial = auction.Run(FastConfig());
  ThreadPool pool(4);
  ClockAuctionConfig parallel_config = FastConfig();
  parallel_config.thread_pool = &pool;
  const ClockAuctionResult parallel = auction.Run(parallel_config);
  EXPECT_EQ(serial.rounds, parallel.rounds);
  EXPECT_EQ(serial.prices, parallel.prices);
  for (std::size_t u = 0; u < bids.size(); ++u) {
    EXPECT_EQ(serial.decisions[u].bundle_index,
              parallel.decisions[u].bundle_index);
  }
}

TEST(ClockAuctionTest, LiteralEquation3ModeMatchesRawExcess) {
  // normalize_excess = false runs the literal Eq. (3): the step is
  // min(α·z⁺, δ) on *raw* excess demand, independent of supply scale.
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, 10.0}})}, 1000.0),
      MakeBid(1, {Bundle({{0, 10.0}})}, 15.0),  // In until p > 1.5.
  };
  ClockAuction auction(bids, {10.0}, {1.0});
  ClockAuctionConfig config;
  config.policy_kind = ClockAuctionConfig::PolicyKind::kCapped;
  config.alpha = 1.0;
  config.delta = 0.5;
  config.normalize_excess = false;
  ClockAuctionConfig recorded = config;
  recorded.record_trajectory = true;
  const ClockAuctionResult r = auction.Run(recorded);
  ASSERT_TRUE(r.converged);
  // Raw excess is 10 at the start (20 demanded, 10 supplied):
  // min(1.0·10, 0.5) = 0.5 per round until the weak bidder drops.
  ASSERT_GE(r.trajectory.size(), 2u);
  EXPECT_NEAR(r.trajectory[1].prices[0] - r.trajectory[0].prices[0], 0.5,
              1e-12);
}

TEST(ClockAuctionTest, DemandEvaluationCounterIsExact) {
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, 1.0}})}, 9.0),
      MakeBid(1, {Bundle({{0, 1.0}})}, 7.0),
      MakeBid(2, {Bundle({{0, 1.0}})}, 5.0),
  };
  ClockAuction auction(bids, {1.0}, {1.0});
  const ClockAuctionResult r = auction.Run(FastConfig());
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.demand_evaluations,
            static_cast<long long>(bids.size()) * r.rounds);
}

TEST(ClockAuctionTest, EmptyBidSetClearsImmediately) {
  ClockAuction auction({}, {5.0, 5.0}, {1.0, 2.0});
  const ClockAuctionResult r = auction.Run(FastConfig());
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.rounds, 1);
  EXPECT_EQ(r.prices, (std::vector<double>{1.0, 2.0}));
}

TEST(ClockAuctionTest, MismatchedVectorsThrow) {
  std::vector<Bid> bids = {MakeBid(0, {Bundle({{0, 1.0}})}, 5.0)};
  EXPECT_THROW(ClockAuction(bids, {1.0, 2.0}, {1.0}), CheckFailure);
  EXPECT_THROW(ClockAuction(bids, {-1.0}, {1.0}), CheckFailure);
  EXPECT_THROW(ClockAuction(bids, {1.0}, {-1.0}), CheckFailure);
}

TEST(ClockAuctionTest, InvalidBidSetThrows) {
  std::vector<Bid> bids = {MakeBid(0, {Bundle({{3, 1.0}})}, 5.0)};
  EXPECT_THROW(ClockAuction(bids, {1.0}, {1.0}), CheckFailure);  // Pool 3.
}

TEST(ClockAuctionTest, RunIsIdempotent) {
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, 1.0}})}, 9.0),
      MakeBid(1, {Bundle({{0, 1.0}})}, 7.0),
  };
  ClockAuction auction(bids, {1.0}, {1.0});
  const ClockAuctionResult a = auction.Run(FastConfig());
  const ClockAuctionResult b = auction.Run(FastConfig());
  EXPECT_EQ(a.prices, b.prices);
  EXPECT_EQ(a.rounds, b.rounds);
}

// -------------------------------------------------------------- settlement --

TEST(SettlementTest, WinnersPayLosersListed) {
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, 2.0}})}, 40.0, "win"),
      MakeBid(1, {Bundle({{0, 2.0}})}, 3.0, "lose"),
  };
  ClockAuction auction(bids, {2.0}, {2.0});
  const ClockAuctionResult r = auction.Run(FastConfig());
  const Settlement s = Settle(auction, r);
  ASSERT_EQ(s.awards.size(), 1u);
  EXPECT_EQ(s.awards[0].user, 0u);
  EXPECT_NEAR(s.awards[0].payment, 2.0 * r.prices[0], 1e-9);
  ASSERT_EQ(s.losers.size(), 1u);
  EXPECT_EQ(s.losers[0], 1u);
  EXPECT_DOUBLE_EQ(s.settled_fraction, 0.5);
  EXPECT_NEAR(s.operator_revenue, s.awards[0].payment, 1e-12);
  EXPECT_NEAR(s.supply_sold[0], 2.0, 1e-9);
}

TEST(SettlementTest, PremiumMatchesEquation5) {
  std::vector<Bid> bids = {MakeBid(0, {Bundle({{0, 4.0}})}, 50.0)};
  ClockAuction auction(bids, {10.0}, {2.5});
  const ClockAuctionResult r = auction.Run(FastConfig());
  const Settlement s = Settle(auction, r);
  ASSERT_EQ(s.awards.size(), 1u);
  const double payment = s.awards[0].payment;  // 4 · 2.5 = 10.
  EXPECT_NEAR(s.awards[0].premium, std::abs(50.0 - payment) / payment,
              1e-12);
}

TEST(SettlementTest, SellerReceivesAndSurplusAbsorbed) {
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, 1.0}})}, 30.0, "buyer"),
      MakeBid(1, {Bundle({{0, -4.0}})}, -2.0, "seller"),
  };
  ClockAuction auction(bids, {0.0}, {1.5});
  const ClockAuctionResult r = auction.Run(FastConfig());
  const Settlement s = Settle(auction, r);
  ASSERT_EQ(s.awards.size(), 2u);
  double buyer_pay = 0.0, seller_pay = 0.0;
  for (const Award& a : s.awards) {
    (a.user == 0 ? buyer_pay : seller_pay) = a.payment;
  }
  EXPECT_GT(buyer_pay, 0.0);
  EXPECT_LT(seller_pay, 0.0);
  EXPECT_NEAR(s.surplus_absorbed[0], 3.0, 1e-9);  // Sold 4, bought 1.
  EXPECT_NEAR(s.operator_revenue, buyer_pay + seller_pay, 1e-12);
  EXPECT_LT(s.operator_revenue, 0.0);  // Operator paid for the surplus.
}

TEST(SettlementTest, PremiumStatsAggregates) {
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, 1.0}})}, 12.0),
      MakeBid(1, {Bundle({{1, 1.0}})}, 15.0),
  };
  ClockAuction auction(bids, {5.0, 5.0}, {10.0, 10.0});
  const ClockAuctionResult r = auction.Run(FastConfig());
  const Settlement s = Settle(auction, r);
  const PremiumStats stats = ComputePremiumStats(s);
  EXPECT_EQ(stats.count, 2u);
  // Payments are 10 each; premiums 0.2 and 0.5.
  EXPECT_NEAR(stats.median, 0.35, 1e-9);
  EXPECT_NEAR(stats.mean, 0.35, 1e-9);
}

TEST(SettlementTest, MismatchedResultThrows) {
  std::vector<Bid> bids = {MakeBid(0, {Bundle({{0, 1.0}})}, 5.0)};
  ClockAuction auction(bids, {1.0}, {1.0});
  ClockAuctionResult bogus;
  EXPECT_THROW(Settle(auction, bogus), CheckFailure);
}

// ------------------------------------------------------------ system check --

TEST(SystemCheckTest, ConvergedAuctionIsFeasible) {
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, 1.0}}), Bundle({{1, 1.0}})}, 20.0),
      MakeBid(1, {Bundle({{0, 2.0}})}, 9.0),
      MakeBid(2, {Bundle({{1, -1.0}})}, -0.5),
  };
  ClockAuction auction(bids, {2.0, 1.0}, {1.0, 1.0});
  const ClockAuctionResult r = auction.Run(FastConfig());
  ASSERT_TRUE(r.converged);
  const SystemCheckResult check = CheckSystemConstraints(auction, r);
  EXPECT_TRUE(check.Feasible()) << check.ToString();
}

TEST(SystemCheckTest, DetectsOversubscription) {
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, 2.0}})}, 100.0),
      MakeBid(1, {Bundle({{0, 2.0}})}, 100.0),
  };
  ClockAuction auction(bids, {1.0}, {1.0});
  ClockAuctionResult forged;
  forged.prices = {1.0};
  forged.decisions = {ProxyDecision{0, 2.0}, ProxyDecision{0, 2.0}};
  forged.excess = {3.0};
  const SystemCheckResult check = CheckSystemConstraints(auction, forged);
  ASSERT_FALSE(check.Feasible());
  EXPECT_NE(check.ToString().find("(2)"), std::string::npos);
}

TEST(SystemCheckTest, DetectsWinnerOverLimit) {
  std::vector<Bid> bids = {MakeBid(0, {Bundle({{0, 1.0}})}, 2.0)};
  ClockAuction auction(bids, {5.0}, {1.0});
  ClockAuctionResult forged;
  forged.prices = {3.0};  // Winner pays 3 > limit 2.
  forged.decisions = {ProxyDecision{0, 3.0}};
  forged.excess = {-4.0};
  const SystemCheckResult check = CheckSystemConstraints(auction, forged);
  ASSERT_FALSE(check.Feasible());
  EXPECT_NE(check.ToString().find("(3)"), std::string::npos);
}

TEST(SystemCheckTest, DetectsNonCheapestAward) {
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, 1.0}}), Bundle({{1, 1.0}})}, 20.0)};
  ClockAuction auction(bids, {5.0, 5.0}, {1.0, 1.0});
  ClockAuctionResult forged;
  forged.prices = {4.0, 2.0};
  forged.decisions = {ProxyDecision{0, 4.0}};  // Pool 1 was cheaper.
  forged.excess = {-4.0, -5.0};
  const SystemCheckResult check = CheckSystemConstraints(auction, forged);
  ASSERT_FALSE(check.Feasible());
  EXPECT_NE(check.ToString().find("(4)"), std::string::npos);
}

TEST(SystemCheckTest, DetectsLoserWhoBidEnough) {
  std::vector<Bid> bids = {MakeBid(0, {Bundle({{0, 1.0}})}, 10.0)};
  ClockAuction auction(bids, {5.0}, {1.0});
  ClockAuctionResult forged;
  forged.prices = {2.0};
  forged.decisions = {ProxyDecision{}};  // Declared loser at price 2 < 10.
  forged.excess = {-5.0};
  const SystemCheckResult check = CheckSystemConstraints(auction, forged);
  ASSERT_FALSE(check.Feasible());
  EXPECT_NE(check.ToString().find("(5)"), std::string::npos);
}

TEST(SystemCheckTest, DetectsPriceBelowReserve) {
  std::vector<Bid> bids = {MakeBid(0, {Bundle({{0, 1.0}})}, 10.0)};
  ClockAuction auction(bids, {5.0}, {3.0});
  ClockAuctionResult forged;
  forged.prices = {1.0};  // Below reserve 3.
  forged.decisions = {ProxyDecision{0, 1.0}};
  forged.excess = {-4.0};
  const SystemCheckResult check = CheckSystemConstraints(auction, forged);
  ASSERT_FALSE(check.Feasible());
  EXPECT_NE(check.ToString().find("(6)"), std::string::npos);
}

}  // namespace
}  // namespace pm::auction
