// Tests for pm::stats: descriptive statistics, boxplots, histograms,
// regression, online accumulators.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "stats/accumulator.h"
#include "stats/descriptive.h"
#include "stats/histogram.h"
#include "stats/regression.h"

namespace pm::stats {
namespace {

const std::vector<double> kSample = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};

TEST(DescriptiveTest, Mean) { EXPECT_DOUBLE_EQ(Mean(kSample), 5.0); }

TEST(DescriptiveTest, VarianceIsUnbiased) {
  // Σ(x-5)² = 9+1+1+1+0+0+4+16 = 32; 32/7.
  EXPECT_NEAR(Variance(kSample), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev(kSample), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(DescriptiveTest, MinMax) {
  EXPECT_EQ(Min(kSample), 2.0);
  EXPECT_EQ(Max(kSample), 9.0);
}

TEST(DescriptiveTest, EmptyInputThrows) {
  std::vector<double> empty;
  EXPECT_THROW(Mean(empty), CheckFailure);
  EXPECT_THROW(Min(empty), CheckFailure);
  EXPECT_THROW(Quantile(empty, 0.5), CheckFailure);
}

TEST(DescriptiveTest, QuantileEndpoints) {
  EXPECT_EQ(Quantile(kSample, 0.0), 2.0);
  EXPECT_EQ(Quantile(kSample, 1.0), 9.0);
}

TEST(DescriptiveTest, QuantileInterpolatesR7) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  // R-7: pos = q*(n-1); q=0.5 → 1.5 → 2.5.
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0 / 3.0), 2.0);
  EXPECT_DOUBLE_EQ(Median(xs), 2.5);
}

TEST(DescriptiveTest, QuantileSingleElement) {
  const std::vector<double> xs = {42.0};
  EXPECT_EQ(Quantile(xs, 0.25), 42.0);
}

TEST(DescriptiveTest, QuantileOutOfRangeThrows) {
  EXPECT_THROW(Quantile(kSample, -0.1), CheckFailure);
  EXPECT_THROW(Quantile(kSample, 1.1), CheckFailure);
}

TEST(DescriptiveTest, QuantileUnsortedInputIsSortedInternally) {
  const std::vector<double> xs = {9.0, 1.0, 5.0};
  EXPECT_EQ(Median(xs), 5.0);
}

TEST(DescriptiveTest, PercentileRankMidRanksTies) {
  const std::vector<double> xs = {1.0, 2.0, 2.0, 3.0};
  // value 2: below=1, ties=2 → rank = 1+1 = 2 of 4 → 50.
  EXPECT_DOUBLE_EQ(PercentileRank(xs, 2.0), 50.0);
  EXPECT_DOUBLE_EQ(PercentileRank(xs, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(PercentileRank(xs, 10.0), 100.0);
}

TEST(DescriptiveTest, BoxplotQuartilesAndWhiskers) {
  const BoxplotSummary box = Boxplot(kSample);
  EXPECT_DOUBLE_EQ(box.median, 4.5);
  EXPECT_DOUBLE_EQ(box.q1, 4.0);   // R-7 at pos 1.75.
  EXPECT_DOUBLE_EQ(box.q3, 5.5);   // R-7 at pos 5.25.
  EXPECT_EQ(box.n, kSample.size());
  EXPECT_LE(box.whisker_lo, box.q1);
  EXPECT_LE(box.q3, box.whisker_hi);
  // IQR = 1.5 → upper fence 7.75: the 9 is a genuine Tukey outlier.
  ASSERT_EQ(box.outliers.size(), 1u);
  EXPECT_EQ(box.outliers[0], 9.0);
  EXPECT_EQ(box.whisker_hi, 7.0);
  EXPECT_EQ(box.whisker_lo, 2.0);
}

TEST(DescriptiveTest, BoxplotFlagsTukeyOutliers) {
  std::vector<double> xs = {10, 11, 12, 13, 14, 15, 16, 100};
  const BoxplotSummary box = Boxplot(xs);
  ASSERT_EQ(box.outliers.size(), 1u);
  EXPECT_EQ(box.outliers[0], 100.0);
  EXPECT_EQ(box.whisker_hi, 16.0);
}

TEST(DescriptiveTest, BoxplotConstantSample) {
  std::vector<double> xs(5, 3.0);
  const BoxplotSummary box = Boxplot(xs);
  EXPECT_EQ(box.median, 3.0);
  EXPECT_EQ(box.whisker_lo, 3.0);
  EXPECT_EQ(box.whisker_hi, 3.0);
  EXPECT_TRUE(box.outliers.empty());
}

TEST(DescriptiveTest, MeanAbsDeviation) {
  const std::vector<double> xs = {1.0, 3.0};
  EXPECT_DOUBLE_EQ(MeanAbsDeviation(xs), 1.0);
}

TEST(DescriptiveTest, PearsonCorrelationSigns) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> up = {2, 4, 6, 8, 10};
  std::vector<double> down(up.rbegin(), up.rend());
  EXPECT_NEAR(PearsonCorrelation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(xs, down), -1.0, 1e-12);
}

TEST(DescriptiveTest, PearsonConstantThrows) {
  const std::vector<double> xs = {1, 2, 3};
  const std::vector<double> c = {5, 5, 5};
  EXPECT_THROW(PearsonCorrelation(xs, c), CheckFailure);
}

// ---------------------------------------------------------------- histogram --

TEST(HistogramTest, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 5);
  h.Add(0.0);   // Bin 0.
  h.Add(1.99);  // Bin 0.
  h.Add(2.0);   // Bin 1.
  h.Add(10.0);  // Top edge lands in last bin.
  EXPECT_EQ(h.Count(0), 2u);
  EXPECT_EQ(h.Count(1), 1u);
  EXPECT_EQ(h.Count(4), 1u);
  EXPECT_EQ(h.TotalCount(), 4u);
}

TEST(HistogramTest, TracksOutOfRange) {
  Histogram h(0.0, 1.0, 2);
  h.Add(-5.0);
  h.Add(2.0);
  EXPECT_EQ(h.Underflow(), 1u);
  EXPECT_EQ(h.Overflow(), 1u);
  EXPECT_EQ(h.TotalCount(), 2u);
}

TEST(HistogramTest, FractionsNormalizeOverInRange) {
  Histogram h(0.0, 4.0, 4);
  h.AddAll({0.5, 1.5, 1.7, 99.0});
  EXPECT_DOUBLE_EQ(h.Fraction(0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.Fraction(1), 2.0 / 3.0);
}

TEST(HistogramTest, BinGeometry) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.BinLow(0), 10.0);
  EXPECT_DOUBLE_EQ(h.BinCenter(2), 15.0);
}

TEST(HistogramTest, InvalidRangeThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), pm::CheckFailure);
}

TEST(HistogramTest, RenderContainsBars) {
  Histogram h(0.0, 1.0, 2);
  h.AddAll({0.1, 0.2, 0.9});
  const std::string out = h.Render(10);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(HistogramTest, SumTracksEveryAdd) {
  Histogram h(0.0, 1.0, 2);
  h.AddAll({0.25, 0.5, 3.0});  // Overflow still counts toward the sum.
  EXPECT_DOUBLE_EQ(h.Sum(), 3.75);
}

TEST(HistogramTest, MergeAddsCountsAndFlows) {
  Histogram a(0.0, 10.0, 5);
  a.AddAll({1.0, 3.0, -1.0});
  Histogram b(0.0, 10.0, 5);
  b.AddAll({1.5, 99.0});
  a.Merge(b);
  EXPECT_EQ(a.Count(0), 2u);  // 1.0 and 1.5.
  EXPECT_EQ(a.Count(1), 1u);  // 3.0.
  EXPECT_EQ(a.Underflow(), 1u);
  EXPECT_EQ(a.Overflow(), 1u);
  EXPECT_EQ(a.TotalCount(), 5u);
  EXPECT_DOUBLE_EQ(a.Sum(), 1.0 + 3.0 - 1.0 + 1.5 + 99.0);
}

TEST(HistogramTest, MergeSingleBucket) {
  Histogram a(0.0, 1.0, 1);
  a.Add(0.5);
  Histogram b(0.0, 1.0, 1);
  b.Add(0.25);
  a.Merge(b);
  EXPECT_EQ(a.Count(0), 2u);
  EXPECT_EQ(a.TotalCount(), 2u);
}

TEST(HistogramTest, MergeEmptyIsNoOp) {
  Histogram a(0.0, 1.0, 4);
  a.Add(0.5);
  Histogram b(0.0, 1.0, 4);
  a.Merge(b);
  EXPECT_EQ(a.TotalCount(), 1u);
  EXPECT_DOUBLE_EQ(a.Sum(), 0.5);
}

TEST(HistogramTest, MergeShapeMismatchThrows) {
  Histogram a(0.0, 1.0, 4);
  Histogram bins(0.0, 1.0, 5);
  Histogram range(0.0, 2.0, 4);
  EXPECT_FALSE(a.SameShape(bins));
  EXPECT_FALSE(a.SameShape(range));
  EXPECT_THROW(a.Merge(bins), CheckFailure);
  EXPECT_THROW(a.Merge(range), CheckFailure);
}

TEST(HistogramTest, QuantileEmptyReturnsLo) {
  Histogram h(2.0, 8.0, 3);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 2.0);
}

TEST(HistogramTest, QuantileInterpolatesWithinBin) {
  // 10 samples spread uniformly across one [0, 10) bin of a 1-bin
  // histogram: the median interpolates to the middle of the bin.
  Histogram h(0.0, 10.0, 1);
  for (int i = 0; i < 10; ++i) h.Add(0.5);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 10.0);
}

TEST(HistogramTest, QuantileUnderOverflowClampToRange) {
  Histogram h(0.0, 1.0, 2);
  h.AddAll({-5.0, 0.25, 9.0});  // One below, one in, one above.
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);   // Underflow mass reads lo.
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1.0);   // Overflow mass reads hi.
}

TEST(HistogramTest, QuantileOrderedAcrossBins) {
  Histogram h(0.0, 10.0, 5);
  h.AddAll({1.0, 3.0, 5.0, 7.0, 9.0});
  double prev = h.Quantile(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double cur = h.Quantile(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
  EXPECT_THROW(h.Quantile(-0.1), CheckFailure);
  EXPECT_THROW(h.Quantile(1.1), CheckFailure);
}

// --------------------------------------------------------------- regression --

TEST(RegressionTest, RecoversExactLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.5 * i);
  }
  const LinearFit fit = FitLinear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(RegressionTest, NoisyLineHasHighR2) {
  RandomStream rng(3);
  std::vector<double> xs, ys;
  for (int i = 0; i < 200; ++i) {
    xs.push_back(i);
    ys.push_back(10.0 + 0.5 * i + rng.Normal(0.0, 1.0));
  }
  const LinearFit fit = FitLinear(xs, ys);
  EXPECT_NEAR(fit.slope, 0.5, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(RegressionTest, UncorrelatedDataHasLowR2) {
  RandomStream rng(9);
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    xs.push_back(i);
    ys.push_back(rng.Normal(0.0, 1.0));
  }
  EXPECT_LT(FitLinear(xs, ys).r_squared, 0.05);
}

TEST(RegressionTest, ConstantXThrows) {
  const std::vector<double> xs = {1.0, 1.0};
  const std::vector<double> ys = {2.0, 3.0};
  EXPECT_THROW(FitLinear(xs, ys), pm::CheckFailure);
}

TEST(RegressionTest, ConstantYIsPerfectFit) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {4.0, 4.0, 4.0};
  const LinearFit fit = FitLinear(xs, ys);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_EQ(fit.r_squared, 1.0);
}

// -------------------------------------------------------------- accumulator --

TEST(AccumulatorTest, MatchesBatchStatistics) {
  Accumulator acc;
  for (double x : kSample) acc.Add(x);
  EXPECT_EQ(acc.Count(), kSample.size());
  EXPECT_DOUBLE_EQ(acc.Mean(), Mean(kSample));
  EXPECT_NEAR(acc.Variance(), Variance(kSample), 1e-12);
  EXPECT_EQ(acc.Min(), 2.0);
  EXPECT_EQ(acc.Max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.Sum(), 40.0);
}

TEST(AccumulatorTest, MergeEquivalentToSequential) {
  Accumulator left, right, all;
  for (std::size_t i = 0; i < kSample.size(); ++i) {
    (i < 3 ? left : right).Add(kSample[i]);
    all.Add(kSample[i]);
  }
  left.Merge(right);
  EXPECT_EQ(left.Count(), all.Count());
  EXPECT_NEAR(left.Mean(), all.Mean(), 1e-12);
  EXPECT_NEAR(left.Variance(), all.Variance(), 1e-12);
  EXPECT_EQ(left.Min(), all.Min());
  EXPECT_EQ(left.Max(), all.Max());
}

TEST(AccumulatorTest, MergeWithEmpty) {
  Accumulator a, empty;
  a.Add(1.0);
  a.Merge(empty);
  EXPECT_EQ(a.Count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.Count(), 1u);
  EXPECT_EQ(empty.Mean(), 1.0);
}

TEST(AccumulatorTest, EmptyQueriesThrow) {
  Accumulator acc;
  EXPECT_TRUE(acc.Empty());
  EXPECT_THROW(acc.Mean(), pm::CheckFailure);
  acc.Add(1.0);
  EXPECT_THROW(acc.Variance(), pm::CheckFailure);  // Needs n >= 2.
}

}  // namespace
}  // namespace pm::stats
