// Tests for pm::net: channels, serializer, wire protocol, and the
// distributed clock auction's equivalence with the serial engine.
#include <gtest/gtest.h>

#include <thread>

#include "auction/settlement.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "net/channel.h"
#include "net/distributed_auction.h"
#include "net/serializer.h"
#include "net/wire.h"

namespace pm::net {
namespace {

// ----------------------------------------------------------------- channel --

TEST(ChannelTest, FifoOrder) {
  Channel<int> ch;
  for (int i = 0; i < 5; ++i) ch.Push(i);
  for (int i = 0; i < 5; ++i) {
    const auto v = ch.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(ChannelTest, TryPopOnEmptyReturnsNullopt) {
  Channel<int> ch;
  EXPECT_FALSE(ch.TryPop().has_value());
  ch.Push(7);
  EXPECT_EQ(ch.TryPop(), 7);
}

TEST(ChannelTest, CloseWakesBlockedPop) {
  Channel<int> ch;
  std::thread waiter([&ch] {
    const auto v = ch.Pop();
    EXPECT_FALSE(v.has_value());
  });
  ch.Close();
  waiter.join();
}

TEST(ChannelTest, PendingMessagesSurviveClose) {
  Channel<int> ch;
  ch.Push(1);
  ch.Close();
  EXPECT_FALSE(ch.Push(2));  // No pushes after close.
  EXPECT_EQ(ch.Pop(), 1);
  EXPECT_FALSE(ch.Pop().has_value());
}

TEST(ChannelTest, CrossThreadDelivery) {
  Channel<int> ch;
  std::thread producer([&ch] {
    for (int i = 0; i < 100; ++i) ch.Push(i);
    ch.Close();
  });
  int expected = 0;
  while (const auto v = ch.Pop()) {
    EXPECT_EQ(*v, expected++);
  }
  EXPECT_EQ(expected, 100);
  producer.join();
}

// -------------------------------------------------------------- serializer --

TEST(SerializerTest, RoundTripsScalars) {
  Serializer s;
  s.WriteU8(0xAB);
  s.WriteU32(0xDEADBEEF);
  s.WriteU64(0x0123456789ABCDEFULL);
  s.WriteI32(-42);
  s.WriteI64(-1LL << 40);
  s.WriteDouble(3.14159);
  s.WriteString("hello");
  Deserializer d(std::move(s).FinishWithChecksum());
  ASSERT_TRUE(d.VerifyChecksum());
  EXPECT_EQ(d.ReadU8(), 0xAB);
  EXPECT_EQ(d.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(d.ReadU64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(d.ReadI32(), -42);
  EXPECT_EQ(d.ReadI64(), -1LL << 40);
  EXPECT_EQ(d.ReadDouble(), 3.14159);
  EXPECT_EQ(d.ReadString(), "hello");
  EXPECT_TRUE(d.Exhausted());
}

TEST(SerializerTest, RoundTripsDoubleVectorsBitExact) {
  Serializer s;
  const std::vector<double> v = {0.0, -0.0, 1e-300, 1e300,
                                 3.141592653589793};
  s.WriteDoubleVector(v);
  Deserializer d(std::move(s).FinishWithChecksum());
  ASSERT_TRUE(d.VerifyChecksum());
  const auto out = d.ReadDoubleVector();
  ASSERT_TRUE(out.has_value());
  ASSERT_EQ(out->size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>((*out)[i]),
              std::bit_cast<std::uint64_t>(v[i]));
  }
}

TEST(SerializerTest, CorruptionFailsChecksum) {
  Serializer s;
  s.WriteU32(12345);
  std::vector<std::uint8_t> frame = std::move(s).FinishWithChecksum();
  frame[1] ^= 0x01;
  Deserializer d(std::move(frame));
  EXPECT_FALSE(d.VerifyChecksum());
}

TEST(SerializerTest, TruncationReturnsNullopt) {
  Serializer s;
  s.WriteU32(7);
  Deserializer d(std::move(s).FinishWithChecksum());
  ASSERT_TRUE(d.VerifyChecksum());
  EXPECT_TRUE(d.ReadU32().has_value());
  EXPECT_FALSE(d.ReadU32().has_value());  // Past the payload.
  EXPECT_FALSE(d.ReadU64().has_value());
}

TEST(SerializerTest, ReadBeforeVerifyThrows) {
  Serializer s;
  s.WriteU8(1);
  Deserializer d(std::move(s).FinishWithChecksum());
  EXPECT_THROW(d.ReadU8(), pm::CheckFailure);
}

TEST(SerializerTest, TooShortFrameFailsVerification) {
  Deserializer d(std::vector<std::uint8_t>{1, 2, 3});
  EXPECT_FALSE(d.VerifyChecksum());
}

TEST(SerializerTest, FnvIsStable) {
  const std::uint8_t data[] = {'a', 'b', 'c'};
  // Reference FNV-1a 64-bit of "abc".
  EXPECT_EQ(Fnv1a(data, 3), 0xe71fa2190541574bULL);
}

// ------------------------------------------------------------------- wire --

TEST(WireTest, PriceAnnounceRoundTrip) {
  PriceAnnounce msg;
  msg.round = 17;
  msg.prices = {1.5, 0.0, 42.0};
  const auto decoded = DecodePriceAnnounce(Encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->round, 17);
  EXPECT_EQ(decoded->prices, msg.prices);
}

TEST(WireTest, DemandReplyRoundTrip) {
  DemandReply msg;
  msg.round = 3;
  msg.node = 2;
  msg.decisions = {WireDecision{0, 1, 12.5}, WireDecision{7, -1, 0.0}};
  const auto decoded = DecodeDemandReply(Encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->node, 2u);
  ASSERT_EQ(decoded->decisions.size(), 2u);
  EXPECT_EQ(decoded->decisions[0].bundle_index, 1);
  EXPECT_EQ(decoded->decisions[1].bundle_index, -1);
}

TEST(WireTest, TerminateRoundTrip) {
  const auto decoded = DecodeTerminate(Encode(Terminate{true}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->converged);
}

TEST(WireTest, PeekTypeIdentifiesFrames) {
  EXPECT_EQ(PeekType(Encode(PriceAnnounce{})),
            MessageType::kPriceAnnounce);
  EXPECT_EQ(PeekType(Encode(DemandReply{})), MessageType::kDemandReply);
  EXPECT_EQ(PeekType(Encode(Terminate{})), MessageType::kTerminate);
}

TEST(WireTest, WrongTypeDecodeFails) {
  EXPECT_FALSE(DecodePriceAnnounce(Encode(Terminate{})).has_value());
  EXPECT_FALSE(DecodeDemandReply(Encode(PriceAnnounce{})).has_value());
}

TEST(WireTest, CorruptFrameFails) {
  auto frame = Encode(PriceAnnounce{1, {2.0}});
  frame[frame.size() / 2] ^= 0xFF;
  EXPECT_FALSE(PeekType(frame).has_value());
  EXPECT_FALSE(DecodePriceAnnounce(std::move(frame)).has_value());
}

// ---------------------------------------------------- distributed auction --

auction::ClockAuction RandomAuction(std::uint64_t seed,
                                    std::size_t num_users) {
  RandomStream rng(seed);
  constexpr std::size_t kPools = 5;
  std::vector<double> supply(kPools), reserve(kPools);
  for (std::size_t r = 0; r < kPools; ++r) {
    supply[r] = rng.Uniform(5.0, 40.0);
    reserve[r] = rng.Uniform(0.5, 3.0);
  }
  std::vector<bid::Bid> bids;
  for (std::size_t u = 0; u < num_users; ++u) {
    bid::Bid b;
    b.user = static_cast<UserId>(u);
    b.name = "u" + std::to_string(u);
    const bool seller = rng.Bernoulli(0.2);
    const auto pool =
        static_cast<PoolId>(rng.UniformInt(0, kPools - 1));
    const double qty = rng.Uniform(1.0, 6.0) * (seller ? -1 : 1);
    b.bundles = {bid::Bundle({bid::BundleItem{pool, qty}})};
    b.limit = seller ? -std::abs(qty) * reserve[pool] * 0.5
                     : std::abs(qty) * reserve[pool] *
                           rng.Uniform(1.0, 4.0);
    bids.push_back(std::move(b));
  }
  return auction::ClockAuction(std::move(bids), std::move(supply),
                               std::move(reserve));
}

TEST(DistributedAuctionTest, MatchesSerialExactly) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auction::ClockAuction auction = RandomAuction(seed, 30);
    auction::ClockAuctionConfig serial_config;
    serial_config.alpha = 0.4;
    serial_config.delta = 0.08;
    const auction::ClockAuctionResult serial =
        auction.Run(serial_config);

    DistributedConfig dist;
    dist.num_proxy_nodes = 4;
    dist.auction = serial_config;
    const DistributedResult distributed =
        RunDistributedAuction(auction, dist);

    ASSERT_EQ(serial.converged, distributed.result.converged);
    EXPECT_EQ(serial.rounds, distributed.result.rounds);
    EXPECT_EQ(serial.prices, distributed.result.prices);  // Bit-exact.
    for (std::size_t u = 0; u < auction.NumUsers(); ++u) {
      EXPECT_EQ(serial.decisions[u].bundle_index,
                distributed.result.decisions[u].bundle_index);
    }
    EXPECT_EQ(distributed.transport.decode_failures, 0);
  }
}

TEST(DistributedAuctionTest, MatchesSerialExactlyUnderLossyWire) {
  // The lossy-wire extension of MatchesSerialExactly: drops, duplicates
  // and stale redeliveries on every link must be absorbed by the
  // retry/dedup layer without perturbing a single bit of the result.
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const auction::ClockAuction auction = RandomAuction(seed, 30);
    auction::ClockAuctionConfig serial_config;
    serial_config.alpha = 0.4;
    serial_config.delta = 0.08;
    const auction::ClockAuctionResult serial =
        auction.Run(serial_config);

    DistributedConfig dist;
    dist.num_proxy_nodes = 4;
    dist.auction = serial_config;
    dist.faults.drop = 0.10;
    dist.faults.duplicate = 0.10;
    dist.faults.delay_window = 2;
    dist.faults.max_retries = 8;  // Never plausibly exhausted at 10%.
    dist.faults.seed = seed ^ 0xfaull;
    const DistributedResult lossy = RunDistributedAuction(auction, dist);

    ASSERT_EQ(serial.converged, lossy.result.converged);
    EXPECT_EQ(serial.rounds, lossy.result.rounds);
    EXPECT_EQ(serial.prices, lossy.result.prices);  // Bit-exact.
    for (std::size_t u = 0; u < auction.NumUsers(); ++u) {
      EXPECT_EQ(serial.decisions[u].bundle_index,
                lossy.result.decisions[u].bundle_index);
    }
    EXPECT_EQ(lossy.transport.decode_failures, 0);
    // The wire must actually have been hostile.
    EXPECT_GT(lossy.transport.frames_dropped, 0);
    EXPECT_GT(lossy.transport.frames_duplicated, 0);
    EXPECT_GT(lossy.transport.frames_stale, 0);
    EXPECT_EQ(lossy.transport.frames_retried,
              lossy.transport.frames_dropped);
  }
}

TEST(DistributedAuctionTest, LossyWireIsDeterministicPerSeed) {
  const auction::ClockAuction auction = RandomAuction(21, 25);
  DistributedConfig dist;
  dist.auction.alpha = 0.4;
  dist.auction.delta = 0.08;
  dist.faults.drop = 0.08;
  dist.faults.duplicate = 0.08;
  dist.faults.delay_window = 1;
  dist.faults.max_retries = 8;
  dist.faults.seed = 99;
  const DistributedResult a = RunDistributedAuction(auction, dist);
  const DistributedResult b = RunDistributedAuction(auction, dist);
  EXPECT_EQ(a.transport.frames_dropped, b.transport.frames_dropped);
  EXPECT_EQ(a.transport.frames_duplicated, b.transport.frames_duplicated);
  EXPECT_EQ(a.transport.frames_stale, b.transport.frames_stale);
  EXPECT_EQ(a.transport.messages_sent, b.transport.messages_sent);
  EXPECT_EQ(a.result.prices, b.result.prices);
}

TEST(DistributedAuctionTest, RetryExhaustionThrowsLinkDown) {
  // A wire so bad the bounded retry gives up: the run must fail loudly
  // (the federation supervisor turns this into a contained shard
  // failure), never silently desync.
  const auction::ClockAuction auction = RandomAuction(23, 20);
  DistributedConfig dist;
  dist.auction.alpha = 0.4;
  dist.auction.delta = 0.08;
  dist.faults.drop = 0.95;
  dist.faults.max_retries = 2;
  dist.faults.seed = 7;
  EXPECT_THROW(RunDistributedAuction(auction, dist), pm::CheckFailure);
}

TEST(DistributedAuctionTest, MessageCountMatchesProtocol) {
  const auction::ClockAuction auction = RandomAuction(7, 20);
  DistributedConfig dist;
  dist.num_proxy_nodes = 4;
  dist.auction.alpha = 0.4;
  dist.auction.delta = 0.08;
  const DistributedResult r = RunDistributedAuction(auction, dist);
  ASSERT_TRUE(r.result.converged);
  // Per round: 4 announces + 4 replies; plus 4 terminates.
  const long long expected =
      static_cast<long long>(r.result.rounds) * 8 + 4;
  EXPECT_EQ(r.transport.messages_sent, expected);
  EXPECT_GT(r.transport.bytes_sent, 0);
}

TEST(DistributedAuctionTest, SingleNodeWorks) {
  const auction::ClockAuction auction = RandomAuction(9, 10);
  DistributedConfig dist;
  dist.num_proxy_nodes = 1;
  dist.auction.alpha = 0.4;
  dist.auction.delta = 0.08;
  const DistributedResult r = RunDistributedAuction(auction, dist);
  EXPECT_TRUE(r.result.converged);
}

TEST(DistributedAuctionTest, MoreNodesThanUsersWorks) {
  const auction::ClockAuction auction = RandomAuction(11, 3);
  DistributedConfig dist;
  dist.num_proxy_nodes = 16;
  dist.auction.alpha = 0.4;
  dist.auction.delta = 0.08;
  const DistributedResult r = RunDistributedAuction(auction, dist);
  EXPECT_TRUE(r.result.converged);
}

TEST(DistributedAuctionTest, SettlementWorksOnDistributedResult) {
  const auction::ClockAuction auction = RandomAuction(13, 25);
  DistributedConfig dist;
  dist.auction.alpha = 0.4;
  dist.auction.delta = 0.08;
  const DistributedResult r = RunDistributedAuction(auction, dist);
  ASSERT_TRUE(r.result.converged);
  const auction::Settlement s = auction::Settle(auction, r.result);
  EXPECT_EQ(s.awards.size() + s.losers.size(), auction.NumUsers());
}

TEST(DistributedAuctionTest, RejectsBisection) {
  const auction::ClockAuction auction = RandomAuction(15, 5);
  DistributedConfig dist;
  dist.auction.intra_round_bisection = true;
  EXPECT_THROW(RunDistributedAuction(auction, dist), pm::CheckFailure);
}

TEST(DistributedAuctionTest, RejectsSerialOnlyKnobsInsteadOfDroppingThem) {
  // Regression: these knobs were silently ignored; now they fail loudly.
  const auction::ClockAuction auction = RandomAuction(15, 5);
  {
    pm::ThreadPool pool(2);
    DistributedConfig dist;
    dist.auction.thread_pool = &pool;
    EXPECT_THROW(RunDistributedAuction(auction, dist), pm::CheckFailure);
  }
  {
    DistributedConfig dist;
    dist.auction.record_trajectory = true;
    EXPECT_THROW(RunDistributedAuction(auction, dist), pm::CheckFailure);
  }
  EXPECT_TRUE(
      auction::DistributedIncompatibility(auction::ClockAuctionConfig{})
          .empty());
}

}  // namespace
}  // namespace pm::net
