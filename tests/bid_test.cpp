// Tests for pm::bid bundles and bids (the §II preference model).
#include <gtest/gtest.h>

#include "bid/bid.h"
#include "bid/bundle.h"
#include "common/check.h"

namespace pm::bid {
namespace {

TEST(BundleTest, DefaultIsEmpty) {
  Bundle b;
  EXPECT_TRUE(b.Empty());
  EXPECT_EQ(b.MinVectorSize(), 0u);
  EXPECT_TRUE(b.IsPureBuy());
  EXPECT_TRUE(b.IsPureSell());
}

TEST(BundleTest, CanonicalizesSortedUniqueNonzero) {
  Bundle b({{3, 5.0}, {1, 2.0}, {3, -1.0}, {2, 0.0}});
  ASSERT_EQ(b.Size(), 2u);
  EXPECT_EQ(b.items()[0].pool, 1u);
  EXPECT_EQ(b.items()[0].qty, 2.0);
  EXPECT_EQ(b.items()[1].pool, 3u);
  EXPECT_EQ(b.items()[1].qty, 4.0);  // 5 - 1 merged.
}

TEST(BundleTest, CancellingItemsVanish) {
  Bundle b({{0, 2.0}, {0, -2.0}});
  EXPECT_TRUE(b.Empty());
}

TEST(BundleTest, QuantityOfAbsentPoolIsZero) {
  Bundle b({{2, 7.0}});
  EXPECT_EQ(b.QuantityOf(2), 7.0);
  EXPECT_EQ(b.QuantityOf(1), 0.0);
  EXPECT_EQ(b.QuantityOf(99), 0.0);
}

TEST(BundleTest, DotComputesCost) {
  Bundle b({{0, 2.0}, {2, -1.0}});
  const std::vector<double> prices = {10.0, 99.0, 4.0};
  EXPECT_DOUBLE_EQ(b.Dot(prices), 2.0 * 10.0 - 1.0 * 4.0);
}

TEST(BundleTest, DotBeyondPriceVectorThrows) {
  Bundle b({{5, 1.0}});
  const std::vector<double> prices = {1.0, 2.0};
  EXPECT_THROW(b.Dot(prices), CheckFailure);
}

TEST(BundleTest, PurityClassification) {
  EXPECT_TRUE(Bundle({{0, 1.0}, {1, 2.0}}).IsPureBuy());
  EXPECT_FALSE(Bundle({{0, 1.0}, {1, 2.0}}).IsPureSell());
  EXPECT_TRUE(Bundle({{0, -1.0}}).IsPureSell());
  Bundle trader({{0, 1.0}, {1, -1.0}});
  EXPECT_FALSE(trader.IsPureBuy());
  EXPECT_FALSE(trader.IsPureSell());
}

TEST(BundleTest, AdditionMergesComponentWise) {
  const Bundle a({{0, 1.0}, {1, 2.0}});
  const Bundle b({{1, 3.0}, {2, -1.0}});
  const Bundle sum = a + b;
  EXPECT_EQ(sum.QuantityOf(0), 1.0);
  EXPECT_EQ(sum.QuantityOf(1), 5.0);
  EXPECT_EQ(sum.QuantityOf(2), -1.0);
}

TEST(BundleTest, NegationFlipsEverySign) {
  const Bundle a({{0, 1.5}, {4, -2.0}});
  const Bundle n = -a;
  EXPECT_EQ(n.QuantityOf(0), -1.5);
  EXPECT_EQ(n.QuantityOf(4), 2.0);
}

TEST(BundleTest, NonFiniteQuantityThrows) {
  EXPECT_THROW(
      Bundle({{0, std::numeric_limits<double>::infinity()}}),
      CheckFailure);
}

TEST(BundleTest, ToStringUsesPoolNames) {
  PoolRegistry reg;
  const PoolId cpu = reg.Intern("c1", ResourceKind::kCpu);
  Bundle b({{cpu, 20.0}});
  EXPECT_EQ(b.ToString(reg), "{cpu@c1: 20}");
}

TEST(BundleTest, AccumulateInto) {
  std::vector<double> dense(3, 1.0);
  AccumulateInto(Bundle({{0, 2.0}, {2, -0.5}}), dense);
  EXPECT_DOUBLE_EQ(dense[0], 3.0);
  EXPECT_DOUBLE_EQ(dense[1], 1.0);
  EXPECT_DOUBLE_EQ(dense[2], 0.5);
}

// ----------------------------------------------------------------- bids --

Bid MakeBuyBid(double limit = 100.0) {
  Bid b;
  b.user = 0;
  b.name = "buyer";
  b.bundles = {Bundle({{0, 5.0}})};
  b.limit = limit;
  return b;
}

TEST(BidTest, ClassifiesBuyerSellerTrader) {
  Bid buyer = MakeBuyBid();
  EXPECT_EQ(ClassifyBid(buyer), BidSide::kBuyer);

  Bid seller;
  seller.bundles = {Bundle({{0, -5.0}})};
  seller.limit = -10.0;
  EXPECT_EQ(ClassifyBid(seller), BidSide::kSeller);

  Bid trader;
  trader.bundles = {Bundle({{0, 5.0}, {1, -5.0}})};
  EXPECT_EQ(ClassifyBid(trader), BidSide::kTrader);

  // XOR across pure-buy and pure-sell alternatives is also a trader.
  Bid mixed;
  mixed.bundles = {Bundle({{0, 5.0}}), Bundle({{1, -5.0}})};
  EXPECT_EQ(ClassifyBid(mixed), BidSide::kTrader);
}

TEST(BidTest, ToStringOfSides) {
  EXPECT_EQ(ToString(BidSide::kBuyer), "buyer");
  EXPECT_EQ(ToString(BidSide::kSeller), "seller");
  EXPECT_EQ(ToString(BidSide::kTrader), "trader");
}

TEST(BidValidateTest, AcceptsWellFormedBid) {
  EXPECT_EQ(ValidateBid(MakeBuyBid(), 1), "");
}

TEST(BidValidateTest, RejectsNoBundles) {
  Bid b = MakeBuyBid();
  b.bundles.clear();
  EXPECT_NE(ValidateBid(b, 1), "");
}

TEST(BidValidateTest, RejectsEmptyBundle) {
  Bid b = MakeBuyBid();
  b.bundles.push_back(Bundle());
  EXPECT_NE(ValidateBid(b, 1), "");
}

TEST(BidValidateTest, RejectsNonFiniteLimit) {
  Bid b = MakeBuyBid(std::numeric_limits<double>::quiet_NaN());
  EXPECT_NE(ValidateBid(b, 1), "");
}

TEST(BidValidateTest, RejectsOutOfRangePool) {
  Bid b = MakeBuyBid();
  b.bundles = {Bundle({{7, 1.0}})};
  EXPECT_NE(ValidateBid(b, 3), "");
  EXPECT_EQ(ValidateBid(b, 8), "");
}

TEST(BidValidateTest, RejectsBuyerWithNonPositiveLimit) {
  EXPECT_NE(ValidateBid(MakeBuyBid(0.0), 1), "");
  EXPECT_NE(ValidateBid(MakeBuyBid(-5.0), 1), "");
}

TEST(BidValidateTest, RejectsSellerWithPositiveLimit) {
  Bid seller;
  seller.user = 0;
  seller.name = "s";
  seller.bundles = {Bundle({{0, -3.0}})};
  seller.limit = 5.0;
  EXPECT_NE(ValidateBid(seller, 1), "");
  seller.limit = -5.0;
  EXPECT_EQ(ValidateBid(seller, 1), "");
}

TEST(BidValidateTest, SellerWithZeroLimitIsFine) {
  // "Sell at any price" is legal (the lowball sellers of §V.C).
  Bid seller;
  seller.user = 0;
  seller.bundles = {Bundle({{0, -3.0}})};
  seller.limit = 0.0;
  EXPECT_EQ(ValidateBid(seller, 1), "");
}

TEST(BidValidateTest, ValidateBidsCatchesDuplicateUsers) {
  std::vector<Bid> bids = {MakeBuyBid(), MakeBuyBid()};
  bids[0].user = 0;
  bids[1].user = 0;
  EXPECT_NE(ValidateBids(bids, 1), "");
}

TEST(BidValidateTest, ValidateBidsCatchesUnassignedIds) {
  std::vector<Bid> bids = {MakeBuyBid()};
  bids[0].user = kInvalidUser;
  EXPECT_NE(ValidateBids(bids, 1), "");
}

TEST(BidValidateTest, AssignUserIdsMakesSetValid) {
  std::vector<Bid> bids = {MakeBuyBid(), MakeBuyBid(), MakeBuyBid()};
  AssignUserIds(bids);
  EXPECT_EQ(ValidateBids(bids, 1), "");
  EXPECT_EQ(bids[2].user, 2u);
}

}  // namespace
}  // namespace pm::bid
