// Tests for the §V.A bid-collection window: submission/amendment/
// withdrawal, periodic preliminary price ticks, automatic close, and the
// end-to-end handoff to a binding auction.
#include <gtest/gtest.h>

#include "agents/workload_gen.h"
#include "auction/clock_auction.h"
#include "common/check.h"
#include "exchange/bid_window.h"
#include "exchange/market.h"

namespace pm::exchange {
namespace {

bid::Bid SimpleBid(const std::string& name, PoolId pool, double qty,
                   double limit) {
  bid::Bid b;
  b.name = name;
  b.bundles = {bid::Bundle({bid::BundleItem{pool, qty}})};
  b.limit = limit;
  return b;
}

/// A stub preliminary computation that records call counts and returns
/// a constant price per bid in the book.
struct StubPricer {
  int calls = 0;
  std::vector<double> operator()(std::vector<bid::Bid> bids) {
    ++calls;
    return std::vector<double>(3, static_cast<double>(bids.size()));
  }
};

TEST(BidWindowTest, CollectsAndClosesAutomatically) {
  sim::EventQueue queue;
  StubPricer pricer;
  BidWindow window(queue, /*close_at=*/100.0, /*tick_period=*/10.0,
                   std::ref(pricer));
  EXPECT_TRUE(window.Submit(SimpleBid("a", 0, 1.0, 5.0)));
  queue.RunUntil(50.0);
  EXPECT_TRUE(window.IsOpen());
  EXPECT_TRUE(window.Submit(SimpleBid("b", 1, 2.0, 9.0)));
  queue.RunUntil(100.0);
  EXPECT_FALSE(window.IsOpen());
  EXPECT_FALSE(window.Submit(SimpleBid("late", 0, 1.0, 5.0)));
}

TEST(BidWindowTest, TicksComputePreliminaryPrices) {
  sim::EventQueue queue;
  StubPricer pricer;
  BidWindow window(queue, 100.0, 10.0, std::ref(pricer));
  window.Submit(SimpleBid("a", 0, 1.0, 5.0));
  queue.RunUntil(35.0);
  // Ticks at 10, 20, 30.
  EXPECT_EQ(window.Ticks().size(), 3u);
  EXPECT_EQ(pricer.calls, 3);
  EXPECT_EQ(window.Ticks()[0].bids_in_book, 1u);
  EXPECT_EQ(window.LatestPreliminaryPrices(),
            std::vector<double>(3, 1.0));
  window.Submit(SimpleBid("b", 0, 1.0, 5.0));
  queue.RunUntil(45.0);
  EXPECT_EQ(window.LatestPreliminaryPrices(),
            std::vector<double>(3, 2.0));
}

TEST(BidWindowTest, NoTicksAfterClose) {
  sim::EventQueue queue;
  StubPricer pricer;
  BidWindow window(queue, 25.0, 10.0, std::ref(pricer));
  queue.RunAll();
  EXPECT_FALSE(window.IsOpen());
  EXPECT_EQ(pricer.calls, 2);  // Ticks at 10 and 20 only.
}

TEST(BidWindowTest, AmendReplacesByName) {
  sim::EventQueue queue;
  StubPricer pricer;
  BidWindow window(queue, 100.0, 10.0, std::ref(pricer));
  window.Submit(SimpleBid("team-a/grow", 0, 1.0, 5.0));
  window.Submit(SimpleBid("team-b/grow", 0, 1.0, 6.0));
  EXPECT_EQ(window.Amend("team-a/grow",
                         SimpleBid("team-a/grow", 0, 2.0, 11.0)),
            1u);
  EXPECT_EQ(window.BookSize(), 2u);
  // Amending an unknown name does nothing.
  EXPECT_EQ(window.Amend("ghost", SimpleBid("ghost", 0, 1.0, 1.0)), 0u);
  EXPECT_EQ(window.BookSize(), 2u);
}

TEST(BidWindowTest, WithdrawRemovesAllWithName) {
  sim::EventQueue queue;
  StubPricer pricer;
  BidWindow window(queue, 100.0, 10.0, std::ref(pricer));
  window.Submit(SimpleBid("dup", 0, 1.0, 5.0));
  window.Submit(SimpleBid("dup", 1, 1.0, 5.0));
  window.Submit(SimpleBid("other", 0, 1.0, 5.0));
  EXPECT_EQ(window.Withdraw("dup"), 2u);
  EXPECT_EQ(window.BookSize(), 1u);
}

TEST(BidWindowTest, CloseAssignsUserIdsAndEmptiesBook) {
  sim::EventQueue queue;
  StubPricer pricer;
  BidWindow window(queue, 100.0, 10.0, std::ref(pricer));
  window.Submit(SimpleBid("a", 0, 1.0, 5.0));
  window.Submit(SimpleBid("b", 1, 2.0, 9.0));
  const std::vector<bid::Bid> final_bids = window.Close();
  ASSERT_EQ(final_bids.size(), 2u);
  EXPECT_EQ(final_bids[0].user, 0u);
  EXPECT_EQ(final_bids[1].user, 1u);
  EXPECT_EQ(window.BookSize(), 0u);
  EXPECT_TRUE(window.Close().empty());  // Idempotent.
}

TEST(BidWindowTest, ValidatesConstruction) {
  sim::EventQueue queue;
  StubPricer pricer;
  EXPECT_THROW(BidWindow(queue, 0.0, 10.0, std::ref(pricer)),
               CheckFailure);
  EXPECT_THROW(BidWindow(queue, 10.0, 0.0, std::ref(pricer)),
               CheckFailure);
}

TEST(BidWindowTest, EndToEndWithMarketPreliminaryPrices) {
  // The full Figure 5 loop: bids accumulate, the market simulator prices
  // the book at intervals, the close hands the final set to a binding
  // clock auction.
  agents::WorkloadConfig workload;
  workload.num_clusters = 4;
  workload.num_teams = 8;
  workload.min_machines_per_cluster = 10;
  workload.max_machines_per_cluster = 15;
  workload.seed = 77;
  agents::World world = GenerateWorld(workload);
  MarketConfig config;
  Market market(&world.fleet, &world.agents, world.fixed_prices, config);

  sim::EventQueue queue;
  BidWindow window(queue, /*close_at=*/72.0, /*tick_period=*/24.0,
                   [&market](std::vector<bid::Bid> bids) {
                     return market.ComputePreliminaryPrices(
                         std::move(bids));
                   });
  // Two teams enter bids at different times during the window.
  window.Submit(SimpleBid("early/buy", 0, 5.0, 1e5));
  queue.RunUntil(30.0);
  ASSERT_FALSE(window.Ticks().empty());
  const std::vector<double> prelim = window.LatestPreliminaryPrices();
  EXPECT_EQ(prelim.size(), world.fleet.NumPools());
  window.Submit(SimpleBid("late/buy", 0, 5.0, 1e5));
  queue.RunUntil(80.0);
  EXPECT_FALSE(window.IsOpen());

  // Preliminary pricing bound nothing.
  EXPECT_EQ(market.AuctionCount(), 0);
  EXPECT_TRUE(market.ledger().Journal().empty());
}

}  // namespace
}  // namespace pm::exchange
