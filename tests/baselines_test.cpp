// Tests for the baseline mechanisms: exact WDP branch & bound, greedy
// pay-as-bid, and the traditional fixed-price allocators.
#include <gtest/gtest.h>

#include <numeric>

#include "auction/clock_auction.h"
#include "auction/fixed_price.h"
#include "auction/greedy.h"
#include "auction/wdp_exact.h"
#include "common/rng.h"

namespace pm::auction {
namespace {

using bid::Bid;
using bid::Bundle;
using bid::BundleItem;

Bid MakeBid(UserId user, std::vector<Bundle> bundles, double limit) {
  Bid b;
  b.user = user;
  b.name = "u" + std::to_string(user);
  b.bundles = std::move(bundles);
  b.limit = limit;
  return b;
}

// -------------------------------------------------------------------- WDP --

TEST(WdpExactTest, PicksHigherValueWhenConflicting) {
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, 1.0}})}, 10.0),
      MakeBid(1, {Bundle({{0, 1.0}})}, 7.0),
  };
  const WdpResult r = SolveWdpExact(bids, {1.0});
  EXPECT_DOUBLE_EQ(r.total_surplus, 10.0);
  EXPECT_EQ(r.chosen[0], 0);
  EXPECT_EQ(r.chosen[1], -1);
}

TEST(WdpExactTest, PacksCompatibleWinners) {
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, 1.0}})}, 5.0),
      MakeBid(1, {Bundle({{1, 1.0}})}, 6.0),
      MakeBid(2, {Bundle({{0, 1.0}, {1, 1.0}})}, 8.0),
  };
  // Supply 1+1: either u2 alone (8) or u0+u1 (11).
  const WdpResult r = SolveWdpExact(bids, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(r.total_surplus, 11.0);
  EXPECT_EQ(r.chosen[2], -1);
}

TEST(WdpExactTest, ChoosesBestBundlePerUser) {
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, 2.0}}), Bundle({{1, 1.0}})}, 9.0),
      MakeBid(1, {Bundle({{0, 2.0}})}, 8.0),
  };
  // Supply allows only one big pool-0 bundle; u0 should flex to pool 1.
  const WdpResult r = SolveWdpExact(bids, {2.0, 1.0});
  EXPECT_DOUBLE_EQ(r.total_surplus, 17.0);
  EXPECT_EQ(r.chosen[0], 1);
  EXPECT_EQ(r.chosen[1], 0);
}

TEST(WdpExactTest, SellersEnableBuyers) {
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, 1.0}})}, 10.0),
      MakeBid(1, {Bundle({{0, -1.0}})}, -2.0),
  };
  // No operator supply: buyer wins only alongside the seller.
  const WdpResult r = SolveWdpExact(bids, {0.0});
  EXPECT_DOUBLE_EQ(r.total_surplus, 8.0);
  EXPECT_EQ(r.chosen[0], 0);
  EXPECT_EQ(r.chosen[1], 0);
}

TEST(WdpExactTest, EmptyMarketHasZeroSurplus) {
  const WdpResult r = SolveWdpExact({}, {1.0});
  EXPECT_DOUBLE_EQ(r.total_surplus, 0.0);
}

TEST(WdpExactTest, NodeBudgetCapsSearch) {
  RandomStream rng(5);
  std::vector<Bid> bids;
  for (UserId u = 0; u < 18; ++u) {
    bids.push_back(MakeBid(
        u, {Bundle({{static_cast<PoolId>(u % 3), rng.Uniform(1.0, 3.0)}})},
        rng.Uniform(1.0, 20.0)));
  }
  const WdpResult r = SolveWdpExact(bids, {10.0, 10.0, 10.0}, 100);
  EXPECT_EQ(r.nodes_expanded, 100);
}

TEST(WdpExactTest, ClockAuctionNeverBeatsExactSurplus) {
  // §III.C.4: the clock finds a feasible, not necessarily optimal point.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    RandomStream rng(seed);
    std::vector<Bid> bids;
    std::vector<double> supply = {rng.Uniform(2, 6), rng.Uniform(2, 6)};
    std::vector<double> reserve = {1.0, 1.0};
    for (UserId u = 0; u < 10; ++u) {
      const auto pool = static_cast<PoolId>(rng.UniformInt(0, 1));
      const double qty = rng.Uniform(1.0, 3.0);
      bids.push_back(MakeBid(u, {Bundle({{pool, qty}})},
                             qty * rng.Uniform(1.0, 5.0)));
    }
    const WdpResult exact = SolveWdpExact(bids, supply);
    ClockAuction auction(bids, supply, reserve);
    ClockAuctionConfig config;
    config.alpha = 0.4;
    config.delta = 0.05;
    const ClockAuctionResult r = auction.Run(config);
    ASSERT_TRUE(r.converged);
    std::vector<int> chosen(bids.size(), -1);
    for (std::size_t u = 0; u < bids.size(); ++u) {
      chosen[u] = r.decisions[u].bundle_index;
    }
    const double clock_surplus = DeclaredSurplus(bids, chosen);
    EXPECT_LE(clock_surplus, exact.total_surplus + 1e-9)
        << "seed " << seed;
  }
}

// ------------------------------------------------------------------ greedy --

TEST(GreedyTest, AwardsByDescendingLimit) {
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, 1.0}})}, 3.0),
      MakeBid(1, {Bundle({{0, 1.0}})}, 9.0),
  };
  const GreedyResult r = SolveGreedy(bids, {1.0});
  EXPECT_EQ(r.chosen[0], -1);
  EXPECT_EQ(r.chosen[1], 0);
  EXPECT_DOUBLE_EQ(r.total_surplus, 9.0);
  EXPECT_DOUBLE_EQ(r.operator_revenue, 9.0);  // Pay-as-bid.
}

TEST(GreedyTest, SkipsToFittingBundle) {
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, 5.0}}), Bundle({{1, 1.0}})}, 10.0),
  };
  const GreedyResult r = SolveGreedy(bids, {1.0, 1.0});
  EXPECT_EQ(r.chosen[0], 1);  // First bundle does not fit.
}

TEST(GreedyTest, CanBeSuboptimal) {
  // Greedy grabs the 10-value hog; optimal is the two 6-value bids.
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, 2.0}})}, 10.0),
      MakeBid(1, {Bundle({{0, 1.0}})}, 6.0),
      MakeBid(2, {Bundle({{0, 1.0}})}, 6.0),
  };
  const GreedyResult greedy = SolveGreedy(bids, {2.0});
  const WdpResult exact = SolveWdpExact(bids, {2.0});
  EXPECT_DOUBLE_EQ(greedy.total_surplus, 10.0);
  EXPECT_DOUBLE_EQ(exact.total_surplus, 12.0);
}

TEST(GreedyTest, SellersReplenishSupply) {
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, -2.0}})}, -1.0),
      MakeBid(1, {Bundle({{0, 2.0}})}, 8.0),
  };
  const GreedyResult r = SolveGreedy(bids, {0.0});
  // Buyer (limit 8) is processed first but cannot fit; seller posts
  // capacity; order is by limit so seller (-1) comes after buyer (8).
  // Greedy is one-pass: buyer misses, seller then sells to no one.
  EXPECT_EQ(r.chosen[1], -1);
  EXPECT_EQ(r.chosen[0], 0);
}

// ------------------------------------------------------------- fixed price --

TEST(FixedPriceTest, PriorityOrderServesFirstComeFirstServed) {
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, 2.0}})}, 50.0),
      MakeBid(1, {Bundle({{0, 2.0}})}, 50.0),
  };
  std::vector<std::size_t> priority = {1, 0};  // User 1 outranks 0.
  const FixedPriceResult r =
      AllocatePriorityOrder(bids, {3.0}, {1.0}, priority);
  EXPECT_EQ(r.chosen[1], 0);
  EXPECT_EQ(r.chosen[0], -1);  // Only 1 unit left; shortage.
  EXPECT_DOUBLE_EQ(r.shortage[0], 2.0);
  EXPECT_DOUBLE_EQ(r.surplus[0], 1.0);
  EXPECT_DOUBLE_EQ(r.operator_revenue, 2.0);
}

TEST(FixedPriceTest, PriceOutIsNotShortage) {
  std::vector<Bid> bids = {MakeBid(0, {Bundle({{0, 2.0}})}, 1.0)};
  std::vector<std::size_t> priority = {0};
  // Fixed price 10: user cannot afford 20, so no request, no shortage.
  const FixedPriceResult r =
      AllocatePriorityOrder(bids, {5.0}, {10.0}, priority);
  EXPECT_EQ(r.chosen[0], -1);
  EXPECT_DOUBLE_EQ(r.shortage[0], 0.0);
  EXPECT_DOUBLE_EQ(r.surplus[0], 5.0);
}

TEST(FixedPriceTest, ProportionalShareScalesOversubscribedPool) {
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, 4.0}})}, 100.0),
      MakeBid(1, {Bundle({{0, 4.0}})}, 100.0),
  };
  const FixedPriceResult r =
      AllocateProportionalShare(bids, {4.0}, {1.0});
  EXPECT_EQ(r.chosen[0], 0);
  EXPECT_EQ(r.chosen[1], 0);
  EXPECT_NEAR(r.scale[0], 0.5, 1e-9);
  EXPECT_NEAR(r.scale[1], 0.5, 1e-9);
  EXPECT_NEAR(r.shortage[0], 4.0, 1e-9);  // Half of 8 requested.
  EXPECT_NEAR(r.operator_revenue, 4.0, 1e-9);
}

TEST(FixedPriceTest, ProportionalShareLeavesFeasibleLoads) {
  RandomStream rng(17);
  std::vector<Bid> bids;
  for (UserId u = 0; u < 20; ++u) {
    std::vector<BundleItem> items;
    const int n = static_cast<int>(rng.UniformInt(1, 3));
    for (int i = 0; i < n; ++i) {
      items.push_back(BundleItem{
          static_cast<PoolId>(rng.UniformInt(0, 3)),
          rng.Uniform(1.0, 6.0)});
    }
    bid::Bundle bundle(std::move(items));
    if (bundle.Empty()) continue;
    bids.push_back(MakeBid(u, {std::move(bundle)}, 1000.0));
  }
  bid::AssignUserIds(bids);
  const std::vector<double> supply = {10.0, 10.0, 10.0, 10.0};
  const std::vector<double> fixed = {1.0, 1.0, 1.0, 1.0};
  const FixedPriceResult r = AllocateProportionalShare(bids, supply, fixed);
  // Granted demand must never exceed supply in any pool.
  std::vector<double> granted(supply.size(), 0.0);
  for (std::size_t u = 0; u < bids.size(); ++u) {
    if (r.chosen[u] < 0) continue;
    for (const BundleItem& item :
         bids[u].bundles[static_cast<std::size_t>(r.chosen[u])].items()) {
      granted[item.pool] += item.qty * r.scale[u];
    }
  }
  for (std::size_t p = 0; p < supply.size(); ++p) {
    EXPECT_LE(granted[p], supply[p] + 1e-6);
  }
}

TEST(FixedPriceTest, ProportionalScalingViolatesBundleIntegrity) {
  // The documented flaw of the traditional scheme: teams get fractions
  // of the bundle they need (the paper's constraint (1) forbids this).
  std::vector<Bid> bids = {
      MakeBid(0, {Bundle({{0, 10.0}})}, 100.0),
      MakeBid(1, {Bundle({{0, 10.0}})}, 100.0),
  };
  const FixedPriceResult r =
      AllocateProportionalShare(bids, {10.0}, {1.0});
  EXPECT_LT(r.scale[0], 1.0);
  EXPECT_GT(r.scale[0], 0.0);
}

TEST(FixedPriceTest, PriorityRequiresFullRanking) {
  std::vector<Bid> bids = {MakeBid(0, {Bundle({{0, 1.0}})}, 5.0)};
  EXPECT_THROW(AllocatePriorityOrder(bids, {1.0}, {1.0}, {}),
               pm::CheckFailure);
}

}  // namespace
}  // namespace pm::auction
