// Tests for the phase profiler (telemetry/profiler.h) and its wiring
// through the federation and scenario layers.
//
// The contracts under test:
//   1. work-accounting determinism — the fed_work_* registry series are
//      byte-identical across reruns, thread counts, and serial vs
//      pipelined epoch drivers (the property that makes work-counter
//      drift a host-noise-immune perf-regression proxy);
//   2. off means off — with the profiler unarmed, no fed_work_ or
//      derived:work_ series exist and every scenario in the registry
//      produces bit-identical metrics with the profiler on vs off;
//   3. the kDeltaDrift rule kind — Δnow/Δprev per label set, quiet
//      start-up, and private baseline state so a drift rule can watch
//      the same counter as a kCounterRate rule without stealing its
//      delta;
//   4. the work alert pack — sustained work drift walks the default
//      drift alert to firing;
//   5. chrome-trace export — well-formed Trace Event Format JSON with
//      one thread_name record per track and the expected phase spans on
//      shard and federation tracks;
//   6. flight recorder — containment dumps attach the failing shard's
//      phase work tree (work counters only, with the rolled-back
//      failing epoch called out).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "federation/federated_exchange.h"
#include "federation/report.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "telemetry/alerts.h"
#include "telemetry/profiler.h"
#include "telemetry/registry.h"
#include "telemetry/rules.h"
#include "telemetry/telemetry.h"

namespace pm::telemetry {
namespace {

// ------------------------------------------------------ profiler object --

TEST(PhaseProfilerTest, RecordsAndFindsWorkPerEpochShard) {
  PhaseProfiler profiler(ProfilerConfig{true, false}, {"alpha", "beta"});
  WorkCounters work;
  work.dot_blocks = 40;
  work.bisection_probes = 7;
  work.kernel = "avx2";
  profiler.RecordWork(0, 1, work);
  ASSERT_NE(profiler.FindWork(0, 1), nullptr);
  EXPECT_EQ(profiler.FindWork(0, 1)->dot_blocks, 40);
  EXPECT_EQ(profiler.FindWork(0, 1)->kernel, "avx2");
  EXPECT_EQ(profiler.FindWork(0, 0), nullptr);
  EXPECT_EQ(profiler.FindWork(1, 1), nullptr);
}

TEST(PhaseProfilerTest, WorkTreeShowsRunUpAndRolledBackEpoch) {
  PhaseProfiler profiler(ProfilerConfig{true, false}, {"alpha"});
  for (int e = 0; e < 4; ++e) {
    WorkCounters work;
    work.dot_blocks = 10 * (e + 1);
    work.full_collections = 2;
    work.incremental_collections = 3;
    work.dirty_bidders = 5;
    work.bisection_probes = e;
    work.refund_ops = 1;
    work.wire_retries = 2;
    work.wire_dedups = 1;
    work.kernel = "scalar";
    profiler.RecordWork(e, 0, work);
  }
  // Epoch 5 itself never reported (it failed): the tree shows the most
  // recent recorded epochs plus an explicit rolled-back note.
  const std::string tree = profiler.RenderWorkTree(0, 5, /*history=*/2);
  EXPECT_NE(tree.find("phase work tree: shard 0"), std::string::npos);
  EXPECT_NE(tree.find("epoch 2"), std::string::npos);
  EXPECT_NE(tree.find("epoch 3"), std::string::npos);
  EXPECT_EQ(tree.find("epoch 1"), std::string::npos);  // History cap.
  EXPECT_NE(tree.find("dot_blocks=40"), std::string::npos);
  EXPECT_NE(tree.find("kernel=scalar"), std::string::npos);
  EXPECT_NE(tree.find("probes="), std::string::npos);
  EXPECT_NE(tree.find("refund_ops="), std::string::npos);
  EXPECT_NE(tree.find("retries="), std::string::npos);
  EXPECT_NE(tree.find("not recorded"), std::string::npos);

  // An epoch that DID report carries no rolled-back note.
  const std::string clean = profiler.RenderWorkTree(0, 3, /*history=*/1);
  EXPECT_EQ(clean.find("not recorded"), std::string::npos);
}

TEST(PhaseProfilerTest, ChromeTraceIsWellFormed) {
  PhaseProfiler profiler(ProfilerConfig{false, true}, {"alpha", "beta"});
  profiler.AddSpan(0, 0, PhaseSpan{"collect", 2000, 5000});
  profiler.AddSpan(1, 0, PhaseSpan{"settle", 4000, 9000});
  {
    ScopedSpan span(&profiler, profiler.federation_track(), 0, "barrier");
    span.AddArg("occupancy", 2.0);
  }
  EXPECT_EQ(profiler.num_spans(), 3u);

  const std::string json = profiler.ChromeTraceJson();
  // One thread_name metadata record per track, federation appended.
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("alpha"), std::string::npos);
  EXPECT_NE(json.find("beta"), std::string::npos);
  EXPECT_NE(json.find("federation"), std::string::npos);
  // Complete ("X") events with epoch args; timestamps normalized to the
  // earliest span (begin 2000 ns -> ts 0).
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"collect\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 0.000"), std::string::npos);
  EXPECT_NE(json.find("\"epoch\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"occupancy\""), std::string::npos);
  int depth = 0;
  for (const char c : json) {
    depth += c == '{' ? 1 : c == '}' ? -1 : 0;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  int brackets = 0;
  for (const char c : json) {
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
  }
  EXPECT_EQ(brackets, 0);
}

TEST(PhaseProfilerTest, NullScopedSpanIsANoOp) {
  ScopedSpan span(nullptr, 0, 0, "never");
  span.AddArg("ignored", 1.0);
  span.Stop();  // Must not crash; nothing to record into.
}

// ------------------------------------------------------ kDeltaDrift rule --

TEST(DeltaDriftRuleTest, DriftIsDeltaOverPreviousDelta) {
  MetricsRegistry reg;
  RuleEngine engine({{RecordingRule::Kind::kDeltaDrift, "work_drift",
                      "work", ""}});
  const Labels shard{"a", "", ""};

  reg.AddCounter("work", shard, 100.0);
  engine.EvaluateEpoch(reg);  // First active epoch: no previous delta.
  EXPECT_DOUBLE_EQ(reg.GaugeValue("derived:work_drift", shard), 0.0);

  reg.AddCounter("work", shard, 100.0);
  engine.EvaluateEpoch(reg);  // Δ 100 / Δ 100.
  EXPECT_DOUBLE_EQ(reg.GaugeValue("derived:work_drift", shard), 1.0);

  reg.AddCounter("work", shard, 300.0);
  engine.EvaluateEpoch(reg);  // Δ 300 / Δ 100: a 3x work blowup.
  EXPECT_DOUBLE_EQ(reg.GaugeValue("derived:work_drift", shard), 3.0);

  engine.EvaluateEpoch(reg);  // Quiet epoch: Δ 0 over Δ 300.
  EXPECT_DOUBLE_EQ(reg.GaugeValue("derived:work_drift", shard), 0.0);
}

TEST(DeltaDriftRuleTest, CoexistsWithCounterRateOnTheSameSource) {
  // The shared-baseline trap: kCounterRate and kRatio difference against
  // one shared per-counter baseline, so two of THOSE on one source would
  // leave the second reading Δ = 0. kDeltaDrift keeps private state
  // precisely so the work pack can ship rate + drift on one counter.
  MetricsRegistry reg;
  RuleEngine engine(
      {{RecordingRule::Kind::kCounterRate, "work_rate", "work", ""},
       {RecordingRule::Kind::kDeltaDrift, "work_drift", "work", ""}});
  const Labels shard{"a", "", ""};

  reg.AddCounter("work", shard, 10.0);
  engine.EvaluateEpoch(reg);
  reg.AddCounter("work", shard, 20.0);
  engine.EvaluateEpoch(reg);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("derived:work_rate", shard), 20.0);
  EXPECT_DOUBLE_EQ(reg.GaugeValue("derived:work_drift", shard), 2.0);
}

TEST(WorkAlertPackTest, SustainedDriftWalksTheDefaultAlertToFiring) {
  MetricsRegistry reg;
  RuleEngine rules(DefaultWorkRecordingRules());
  AlertEngine alerts(DefaultWorkAlertRules());
  const Labels shard{"a", "", ""};

  // Epochs 0-1: steady work, drift <= 1. Epochs 2-3: a sustained 3x
  // blowup; the default work-dot-block-drift rule (threshold 2.0,
  // for_epochs 2) goes pending then firing.
  const double deltas[] = {100.0, 100.0, 300.0, 900.0};
  bool fired = false;
  for (int e = 0; e < 4; ++e) {
    reg.AddCounter("fed_work_dot_blocks", shard, deltas[e]);
    rules.EvaluateEpoch(reg);
    alerts.EvaluateEpoch(reg, e);
    for (const std::string& name : alerts.FiringNames()) {
      fired = fired || name == "work-dot-block-drift";
    }
  }
  EXPECT_TRUE(fired);
  EXPECT_TRUE(alerts.EverFired("work-dot-block-drift"));
}

// --------------------------------------------------- federation wiring --

std::vector<federation::ShardSpec> BaseShards(std::size_t shards,
                                              int teams) {
  std::vector<federation::ShardSpec> specs;
  for (std::size_t k = 0; k < shards; ++k) {
    federation::ShardSpec spec;
    spec.name = "shard-" + std::to_string(k);
    spec.workload.num_teams = teams;
    spec.workload.num_clusters = 4;
    spec.market.auction.alpha = 0.4;
    spec.market.auction.delta = 0.08;
    spec.market.auction.max_rounds = 30000;
    specs.push_back(std::move(spec));
  }
  return specs;
}

federation::FederationConfig ProfilerConfigOn(bool pipelined,
                                              std::size_t num_threads) {
  federation::FederationConfig config;
  config.seed = 20090425;
  config.num_threads = num_threads;
  config.pipelined = pipelined;
  config.telemetry.enabled = true;
  config.telemetry.profiler.work_accounting = true;
  return config;
}

std::string MetricsOf(const federation::FederatedExchange& fed) {
  return fed.telemetry() != nullptr ? fed.telemetry()->MetricsJson() : "";
}

TEST(WorkAccountingTest, CountersAreByteIdenticalAcrossThreadsAndReruns) {
  const auto run = [](std::size_t threads) {
    federation::FederatedExchange fed(BaseShards(3, 20),
                                      ProfilerConfigOn(false, threads));
    fed.RunEpochs(3);
    return MetricsOf(fed);
  };
  const std::string once = run(1);
  EXPECT_EQ(once, run(1));  // Rerun.
  EXPECT_EQ(once, run(4));  // Thread count.
  EXPECT_NE(once.find("fed_work_dot_blocks"), std::string::npos);
  EXPECT_NE(once.find("fed_work_dirty_bidders"), std::string::npos);
  EXPECT_NE(once.find("fed_work_refund_ops"), std::string::npos);
  // The dot-block series carries the kernel tier as its phase label
  // (the JSON document escapes the quotes inside canonical keys).
  EXPECT_NE(once.find("phase=\\\"scalar\\\""), std::string::npos);
}

TEST(WorkAccountingTest, SerialAndPipelinedCountersAreByteIdentical) {
  federation::FederatedExchange serial(BaseShards(3, 20),
                                       ProfilerConfigOn(false, 2));
  serial.RunEpochs(3);
  federation::FederatedExchange pipelined(BaseShards(3, 20),
                                          ProfilerConfigOn(true, 2));
  pipelined.RunEpochs(3);
  EXPECT_EQ(MetricsOf(serial), MetricsOf(pipelined));
}

TEST(WorkAccountingTest, ProfilerOffLeaksNoWorkSeries) {
  federation::FederationConfig config = ProfilerConfigOn(false, 2);
  config.telemetry.profiler.work_accounting = false;
  config.telemetry.watchdog.recording_rules = true;
  config.telemetry.watchdog.alerts = true;
  federation::FederatedExchange fed(BaseShards(2, 12), config);
  fed.RunEpochs(2);
  const std::string json = MetricsOf(fed);
  EXPECT_EQ(json.find("fed_work_"), std::string::npos);
  EXPECT_EQ(json.find("derived:work_"), std::string::npos);
  EXPECT_EQ(fed.telemetry()->profiler(), nullptr);
}

TEST(WorkAccountingTest, WorkRulePackRidesTheWatchdogWhenBothArmed) {
  federation::FederationConfig config = ProfilerConfigOn(false, 2);
  config.telemetry.watchdog.recording_rules = true;
  config.telemetry.watchdog.alerts = true;
  federation::FederatedExchange fed(BaseShards(2, 12), config);
  fed.RunEpochs(2);
  const std::string json = MetricsOf(fed);
  EXPECT_NE(json.find("fed_work_dot_blocks"), std::string::npos);
  EXPECT_NE(json.find("derived:work_dot_blocks_rate"), std::string::npos);
  EXPECT_NE(json.find("derived:work_dot_blocks_drift"),
            std::string::npos);
  EXPECT_NE(json.find("derived:work_probes_per_round"),
            std::string::npos);
}

// ------------------------------------------------------ scenario gating --

TEST(ProfilerGateTest, OffIsBitIdenticalOverTheScenarioRegistry) {
  // Every registered scenario: arming both profiler channels must not
  // move a single byte of the scenario metrics document.
  for (const std::string& name : scenario::ScenarioNames()) {
    const auto run = [&](bool profiler) {
      scenario::ScenarioSpec spec = scenario::FindScenario(name);
      spec.federation.telemetry.enabled = true;
      spec.federation.telemetry.profiler.work_accounting = profiler;
      spec.federation.telemetry.profiler.wall_clock = profiler;
      scenario::RunnerConfig config;
      config.epochs = 2;
      scenario::ScenarioRunner runner(std::move(spec), config);
      return runner.Run().ToJson();
    };
    EXPECT_EQ(run(false), run(true)) << "scenario " << name;
  }
}

// --------------------------------------------------- wall-clock channel --

TEST(WallChannelTest, SerialFederationRecordsShardAndFederationSpans) {
  federation::FederationConfig config;
  config.seed = 20090425;
  config.num_threads = 2;
  config.telemetry.enabled = true;
  config.telemetry.profiler.wall_clock = true;
  federation::FederatedExchange fed(BaseShards(2, 12), config);
  fed.RunEpochs(2);
  const PhaseProfiler* profiler = fed.telemetry()->profiler();
  ASSERT_NE(profiler, nullptr);
  EXPECT_GT(profiler->num_spans(), 0u);
  const std::string json = profiler->ChromeTraceJson();
  EXPECT_NE(json.find("\"name\": \"collect\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"settle\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"barrier\""), std::string::npos);
  EXPECT_NE(json.find("federation"), std::string::npos);
  EXPECT_NE(json.find("shard-0"), std::string::npos);
  // The wall channel never reaches the deterministic document.
  EXPECT_EQ(MetricsOf(fed).find("fed_work_"), std::string::npos);
}

TEST(WallChannelTest, PipelinedRunRecordsWindowSpansWithOccupancy) {
  federation::FederationConfig config;
  config.seed = 20090425;
  config.num_threads = 2;
  config.pipelined = true;
  config.telemetry.enabled = true;
  config.telemetry.profiler.wall_clock = true;
  federation::FederatedExchange fed(BaseShards(3, 15), config);
  fed.RunEpochs(3);
  const std::string json =
      fed.telemetry()->profiler()->ChromeTraceJson();
  EXPECT_NE(json.find("\"name\": \"window-wait\""), std::string::npos);
  EXPECT_NE(json.find("\"occupancy\""), std::string::npos);
}

// ------------------------------------------------------ flight recorder --

TEST(FlightDumpTest, ContainmentDumpAttachesThePhaseWorkTree) {
  federation::FederationConfig config = ProfilerConfigOn(false, 2);
  config.supervisor.enabled = true;
  config.supervisor.quarantine_streak = 1;
  federation::FederatedExchange fed(BaseShards(2, 12), config);
  fed.RunEpoch();  // A healthy run-up epoch records work for shard 0.
  fed.InjectShardFailure(0);
  fed.RunEpoch();

  const std::vector<FlightDump>& dumps =
      fed.telemetry()->recorder().dumps();
  ASSERT_FALSE(dumps.empty());
  const FlightDump& dump = dumps.front();
  EXPECT_EQ(dump.shard, 0u);
  EXPECT_NE(dump.text.find("phase work tree"), std::string::npos);
  EXPECT_NE(dump.text.find("dot_blocks="), std::string::npos);
  // The failing epoch rolled back with the shard; the tree says so.
  EXPECT_NE(dump.text.find("not recorded"), std::string::npos);
}

TEST(FlightDumpTest, ProfilerOffDumpsCarryNoWorkTree) {
  federation::FederationConfig config;
  config.seed = 20090425;
  config.num_threads = 2;
  config.telemetry.enabled = true;
  config.supervisor.enabled = true;
  config.supervisor.quarantine_streak = 1;
  federation::FederatedExchange fed(BaseShards(2, 12), config);
  fed.InjectShardFailure(0);
  fed.RunEpoch();
  const std::vector<FlightDump>& dumps =
      fed.telemetry()->recorder().dumps();
  ASSERT_FALSE(dumps.empty());
  EXPECT_EQ(dumps.front().text.find("phase work tree"),
            std::string::npos);
}

}  // namespace
}  // namespace pm::telemetry
