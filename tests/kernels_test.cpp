// Tests for the demand-engine dot kernels (auction/kernels.h): the
// dispatch contract (scalar always present, kAuto resolves to something
// this host can run, names round-trip), the numeric contract (every
// kernel within PairwiseErrorBound of the DotAscending oracle, the
// scalar kernel bit-exact), per-kernel rerun determinism, decision
// identity across kernels at the engine level, and the scalar-oracle
// byte-identity regression over the scenario registry (kernel = kScalar
// must be indistinguishable from the default-constructed engine, which
// is the pre-kernel arithmetic).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "auction/clock_auction.h"
#include "auction/demand_engine.h"
#include "auction/kernels.h"
#include "bid/bid.h"
#include "common/rng.h"
#include "common/types.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"

namespace pm::auction {
namespace {

using bid::Bid;
using bid::Bundle;
using bid::BundleItem;

// ------------------------------------------------------------ dispatch --

TEST(KernelDispatch, ScalarAndUnrolledAlwaysCompiled) {
  const std::vector<Kernel> kernels = CompiledKernels();
  EXPECT_NE(std::find(kernels.begin(), kernels.end(), Kernel::kScalar),
            kernels.end());
  EXPECT_NE(std::find(kernels.begin(), kernels.end(), Kernel::kUnrolled),
            kernels.end());
}

TEST(KernelDispatch, AutoResolvesToACompiledKernel) {
  const std::vector<Kernel> kernels = CompiledKernels();
  const Kernel resolved = ResolveKernelChoice(Kernel::kAuto);
  EXPECT_NE(std::find(kernels.begin(), kernels.end(), resolved),
            kernels.end());
  // Concrete kernels resolve to themselves.
  for (const Kernel k : kernels) {
    EXPECT_EQ(ResolveKernelChoice(k), k);
    EXPECT_NE(ResolveKernel(k), nullptr);
  }
}

TEST(KernelDispatch, NamesRoundTrip) {
  for (const Kernel k : CompiledKernels()) {
    const auto parsed = ParseKernel(ToString(k));
    ASSERT_TRUE(parsed.has_value()) << ToString(k);
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_EQ(ParseKernel("auto"), Kernel::kAuto);
  EXPECT_FALSE(ParseKernel("mmx").has_value());
  EXPECT_FALSE(ParseKernel("").has_value());
}

// ------------------------------------------------------ numeric contract --

/// A randomized CSR arena with deliberately ragged bundle sizes: empty
/// bundles, singletons, and sizes straddling the 4- and 8-element vector
/// strides (tails are where SIMD kernels go wrong).
struct Arena {
  std::vector<std::uint32_t> begin;
  std::vector<PoolId> pool;
  std::vector<double> qty;
  std::vector<double> price;
};

Arena MakeArena(std::uint64_t seed, std::uint32_t bundles, int pools) {
  RandomStream rng(seed);
  Arena a;
  a.begin.push_back(0);
  for (std::uint32_t b = 0; b < bundles; ++b) {
    const int n = static_cast<int>(rng.UniformInt(0, 21));
    for (int e = 0; e < n; ++e) {
      a.pool.push_back(static_cast<PoolId>(rng.UniformInt(0, pools - 1)));
      // Mixed signs: seller bundles have negative quantities.
      a.qty.push_back(rng.Uniform(0.5, 6.0) *
                      (rng.Bernoulli(0.25) ? -1.0 : 1.0));
    }
    a.begin.push_back(static_cast<std::uint32_t>(a.pool.size()));
  }
  for (int r = 0; r < pools; ++r) {
    a.price.push_back(rng.Uniform(0.0, 9.0));
  }
  return a;
}

TEST(KernelNumerics, EveryKernelWithinPairwiseBoundOfOracle) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Arena a = MakeArena(seed, /*bundles=*/64, /*pools=*/17);
    const std::uint32_t bundles =
        static_cast<std::uint32_t>(a.begin.size() - 1);
    std::vector<double> oracle(bundles);
    for (std::uint32_t b = 0; b < bundles; ++b) {
      const std::uint32_t e0 = a.begin[b];
      oracle[b] = DotAscending(
          a.begin[b + 1] - e0, [&](std::size_t e) { return a.pool[e0 + e]; },
          [&](std::size_t e) { return a.qty[e0 + e]; }, a.price.data());
    }
    for (const Kernel k : CompiledKernels()) {
      std::vector<double> cost(bundles, -1.0);
      ResolveKernel(k)(a.begin.data(), a.pool.data(), a.qty.data(),
                       a.price.data(), 0, bundles, cost.data());
      for (std::uint32_t b = 0; b < bundles; ++b) {
        if (k == Kernel::kScalar) {
          // The scalar kernel IS the oracle arithmetic: bit-exact.
          ASSERT_EQ(cost[b], oracle[b])
              << "scalar kernel diverged, seed " << seed << " bundle " << b;
          continue;
        }
        double abs_sum = 0.0;
        for (std::uint32_t e = a.begin[b]; e < a.begin[b + 1]; ++e) {
          abs_sum += std::abs(a.qty[e]) * a.price[a.pool[e]];
        }
        const std::size_t n = a.begin[b + 1] - a.begin[b];
        ASSERT_LE(std::abs(cost[b] - oracle[b]),
                  PairwiseErrorBound(n, abs_sum))
            << ToString(k) << " seed " << seed << " bundle " << b
            << " (n=" << n << ")";
      }
    }
  }
}

TEST(KernelNumerics, EmptyAndPartialBlocksAreSafe) {
  const Arena a = MakeArena(99, /*bundles=*/16, /*pools=*/5);
  const std::uint32_t bundles =
      static_cast<std::uint32_t>(a.begin.size() - 1);
  for (const Kernel k : CompiledKernels()) {
    std::vector<double> cost(bundles, -7.0);
    // Empty range: must not touch cost_out.
    ResolveKernel(k)(a.begin.data(), a.pool.data(), a.qty.data(),
                     a.price.data(), 3, 3, cost.data());
    for (const double c : cost) EXPECT_EQ(c, -7.0);
    // Interior sub-range: only [2, 5) written.
    ResolveKernel(k)(a.begin.data(), a.pool.data(), a.qty.data(),
                     a.price.data(), 2, 5, cost.data());
    for (std::uint32_t b = 0; b < bundles; ++b) {
      if (b < 2 || b >= 5) EXPECT_EQ(cost[b], -7.0) << b;
    }
  }
}

TEST(KernelNumerics, RerunsAreBitIdenticalPerKernel) {
  const Arena a = MakeArena(7, /*bundles=*/128, /*pools=*/23);
  const std::uint32_t bundles =
      static_cast<std::uint32_t>(a.begin.size() - 1);
  for (const Kernel k : CompiledKernels()) {
    std::vector<double> first(bundles), again(bundles);
    ResolveKernel(k)(a.begin.data(), a.pool.data(), a.qty.data(),
                     a.price.data(), 0, bundles, first.data());
    ResolveKernel(k)(a.begin.data(), a.pool.data(), a.qty.data(),
                     a.price.data(), 0, bundles, again.data());
    ASSERT_EQ(std::memcmp(first.data(), again.data(),
                          bundles * sizeof(double)),
              0)
        << ToString(k);
  }
}

// ----------------------------------------------------- engine contract --

ClockAuction MakeMarket(std::uint64_t seed, int users, int pools,
                        DemandEngineConfig config) {
  RandomStream rng(seed);
  std::vector<double> supply(static_cast<std::size_t>(pools), 8.0);
  std::vector<double> reserve(static_cast<std::size_t>(pools), 1.0);
  std::vector<Bid> bids;
  for (int u = 0; u < users; ++u) {
    Bid b;
    b.user = static_cast<UserId>(u);
    b.name = "u" + std::to_string(u);
    const int num_bundles = static_cast<int>(rng.UniformInt(1, 5));
    for (int k = 0; k < num_bundles; ++k) {
      std::vector<BundleItem> items;
      const int nnz = static_cast<int>(rng.UniformInt(1, 18));
      for (int j = 0; j < nnz; ++j) {
        items.push_back(BundleItem{
            static_cast<PoolId>(rng.UniformInt(0, pools - 1)),
            rng.Uniform(0.5, 4.0)});
      }
      Bundle bundle(std::move(items));
      if (!bundle.Empty()) b.bundles.push_back(std::move(bundle));
    }
    if (b.bundles.empty()) {
      b.bundles.push_back(Bundle({BundleItem{0, 1.0}}));
    }
    b.limit = rng.Uniform(20.0, 200.0);
    bids.push_back(std::move(b));
  }
  bid::AssignUserIds(bids);
  return ClockAuction(std::move(bids), std::move(supply),
                      std::move(reserve), config);
}

TEST(KernelEngine, DecisionsAndExcessIdenticalAcrossKernels) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    DemandEngineConfig scalar_config;  // kScalar.
    const ClockAuction oracle_market =
        MakeMarket(seed, /*users=*/600, /*pools=*/40, scalar_config);
    RandomStream rng(seed * 31);
    std::vector<std::vector<double>> price_points;
    for (int p = 0; p < 4; ++p) {
      std::vector<double> prices;
      for (std::size_t r = 0; r < oracle_market.NumPools(); ++r) {
        prices.push_back(rng.Uniform(0.5, 6.0));
      }
      price_points.push_back(std::move(prices));
    }
    std::vector<std::vector<ProxyDecision>> oracle_decisions;
    std::vector<std::vector<double>> oracle_excess;
    {
      DemandEngine::Workspace ws;  // Workspaces bind to one engine.
      for (const auto& prices : price_points) {
        ws.Reset();
        oracle_market.engine().CollectDemand(prices, nullptr, ws);
        oracle_decisions.push_back(ws.decisions());
        oracle_excess.push_back(ws.excess());
      }
    }
    for (const Kernel k : CompiledKernels()) {
      if (k == Kernel::kScalar) continue;
      DemandEngineConfig config;
      config.kernel = k;
      const ClockAuction market =
          MakeMarket(seed, /*users=*/600, /*pools=*/40, config);
      EXPECT_EQ(market.engine().kernel(), k);
      DemandEngine::Workspace ws;
      for (std::size_t p = 0; p < price_points.size(); ++p) {
        ws.Reset();
        market.engine().CollectDemand(price_points[p], nullptr, ws);
        for (std::size_t u = 0; u < ws.decisions().size(); ++u) {
          ASSERT_EQ(ws.decisions()[u].bundle_index,
                    oracle_decisions[p][u].bundle_index)
              << ToString(k) << " seed " << seed << " user " << u;
        }
        // Identical decisions imply bit-identical excess: the excess
        // fold is scalar and block-ordered regardless of dot kernel.
        for (std::size_t r = 0; r < ws.excess().size(); ++r) {
          ASSERT_EQ(ws.excess()[r], oracle_excess[p][r])
              << ToString(k) << " seed " << seed << " pool " << r;
        }
      }
    }
  }
}

TEST(KernelEngine, DefaultConfigIsScalar) {
  const DemandEngineConfig config;
  EXPECT_EQ(config.kernel, Kernel::kScalar);
  const ClockAuction market = MakeMarket(3, 50, 8, config);
  EXPECT_EQ(market.engine().kernel(), Kernel::kScalar);
}

TEST(KernelEngine, FullRunAgreesAcrossKernels) {
  ClockAuctionConfig run_config;
  run_config.alpha = 0.4;
  run_config.delta = 0.08;
  run_config.max_rounds = 5000;
  DemandEngineConfig scalar_config;
  const ClockAuction oracle_market = MakeMarket(11, 400, 25, scalar_config);
  const ClockAuctionResult oracle = oracle_market.Run(run_config);
  for (const Kernel k : CompiledKernels()) {
    if (k == Kernel::kScalar) continue;
    DemandEngineConfig config;
    config.kernel = k;
    const ClockAuction market = MakeMarket(11, 400, 25, config);
    const ClockAuctionResult run = market.Run(run_config);
    EXPECT_EQ(run.converged, oracle.converged) << ToString(k);
    ASSERT_EQ(run.decisions.size(), oracle.decisions.size());
    for (std::size_t u = 0; u < run.decisions.size(); ++u) {
      EXPECT_EQ(run.decisions[u].bundle_index,
                oracle.decisions[u].bundle_index)
          << ToString(k) << " user " << u;
    }
    // Price trajectories can diverge only when a dot-product rounding
    // difference flips a bisection threshold; with identical decisions
    // at every visited price vector the trajectories coincide.
    ASSERT_EQ(run.prices.size(), oracle.prices.size());
    for (std::size_t r = 0; r < run.prices.size(); ++r) {
      EXPECT_NEAR(run.prices[r], oracle.prices[r],
                  std::max(1e-9, 1e-9 * oracle.prices[r]))
          << ToString(k) << " pool " << r;
    }
  }
}

// -------------------------------------- scenario-registry regression --

/// kernel = kScalar spelled explicitly must be byte-indistinguishable
/// from the default-constructed engine across every registered scenario:
/// the default IS the pre-kernel scalar arithmetic, so this pins the
/// whole refactor against the shipped scenario corpus.
TEST(KernelScenarioRegression, ExplicitScalarMatchesDefaultByteForByte) {
  for (const std::string& name : scenario::ScenarioNames()) {
    scenario::RunnerConfig runner_config;
    runner_config.epochs = 1;  // SLOs skip below min_epochs; we only
                               // compare the rendered metrics.
    std::string default_json;
    {
      scenario::ScenarioRunner runner(scenario::FindScenario(name),
                                      runner_config);
      default_json = runner.Run().ToJson();
    }
    scenario::ScenarioSpec spec = scenario::FindScenario(name);
    for (federation::ShardSpec& shard : spec.shards) {
      shard.market.demand_engine.kernel = Kernel::kScalar;
    }
    scenario::ScenarioRunner runner(std::move(spec), runner_config);
    EXPECT_EQ(runner.Run().ToJson(), default_json) << name;
  }
}

}  // namespace
}  // namespace pm::auction
