// Tests for pm::agents: price learning, bidding strategies, workload
// generation.
#include <gtest/gtest.h>

#include "agents/strategy.h"
#include "agents/team.h"
#include "agents/workload_gen.h"
#include "common/check.h"

namespace pm::agents {
namespace {

// --------------------------------------------------------------- learning --

TEST(PriceLearnerTest, BeliefsMoveTowardObservations) {
  PriceLearner learner({10.0, 10.0}, 0.5, 0.5, 0.9);
  const std::vector<double> observed = {20.0, 6.0};
  learner.Observe(observed);
  EXPECT_NEAR(learner.Belief(0), 15.0, 1e-12);
  EXPECT_NEAR(learner.Belief(1), 8.0, 1e-12);
}

TEST(PriceLearnerTest, RepeatedObservationConverges) {
  PriceLearner learner({100.0}, 0.5, 0.5, 0.9);
  const std::vector<double> market = {10.0};
  for (int i = 0; i < 30; ++i) learner.Observe(market);
  EXPECT_NEAR(learner.Belief(0), 10.0, 1e-3);
  EXPECT_EQ(learner.ObservationCount(), 30);
}

TEST(PriceLearnerTest, MarkupDecaysGeometrically) {
  PriceLearner learner({1.0}, 0.5, 0.8, 0.5);
  EXPECT_DOUBLE_EQ(learner.Markup(), 0.8);
  const std::vector<double> p = {1.0};
  learner.Observe(p);
  EXPECT_DOUBLE_EQ(learner.Markup(), 0.4);
  learner.Observe(p);
  EXPECT_DOUBLE_EQ(learner.Markup(), 0.2);
}

TEST(PriceLearnerTest, BelievedCostSumsItems) {
  PriceLearner learner({2.0, 3.0, 5.0}, 0.5, 0.0, 1.0);
  const std::vector<std::size_t> pools = {0, 2};
  const std::vector<double> qtys = {4.0, 2.0};
  EXPECT_DOUBLE_EQ(learner.BelievedCost(pools, qtys), 18.0);
}

TEST(PriceLearnerTest, ValidatesArguments) {
  EXPECT_THROW(PriceLearner({}, 0.5, 0.5, 0.9), pm::CheckFailure);
  EXPECT_THROW(PriceLearner({1.0}, 0.0, 0.5, 0.9), pm::CheckFailure);
  EXPECT_THROW(PriceLearner({1.0}, 0.5, -0.1, 0.9), pm::CheckFailure);
  PriceLearner learner({1.0}, 0.5, 0.5, 0.9);
  const std::vector<double> wrong_size = {1.0, 2.0};
  EXPECT_THROW(learner.Observe(wrong_size), pm::CheckFailure);
  EXPECT_THROW(learner.Belief(5), pm::CheckFailure);
}

// ------------------------------------------------------------- strategies --

/// Test harness: a 3-cluster world with a hot home cluster.
struct StrategyFixture {
  PoolRegistry registry;
  std::vector<double> reserve;
  std::vector<double> utilization;
  std::vector<double> free_capacity;

  StrategyFixture() {
    // Pools: hot (0,1,2), mid (3,4,5), cold (6,7,8).
    for (const char* name : {"hot", "mid", "cold"}) {
      for (ResourceKind kind : kAllResourceKinds) {
        registry.Intern(name, kind);
      }
    }
    // Hot cluster: expensive reserves, no free room.
    reserve = {20.0, 3.0, 1.6, 10.0, 1.5, 0.8, 5.0, 0.75, 0.4};
    utilization = {0.95, 0.95, 0.95, 0.5, 0.5, 0.5, 0.1, 0.1, 0.1};
    free_capacity = {50, 200, 25, 500, 2000, 250, 900, 3600, 450};
  }

  MarketView View(double budget = 1e6) const {
    MarketView view;
    view.registry = &registry;
    view.reserve_prices = reserve;
    view.utilization = utilization;
    view.free_capacity = free_capacity;
    view.budget = budget;
    view.auction_index = 0;
    return view;
  }

  TeamProfile Profile(StrategyKind kind) const {
    TeamProfile p;
    p.name = "team-x";
    p.home_cluster = "hot";
    p.footprint = {40.0, 160.0, 20.0};
    p.growth_rate = 0.1;
    p.relocation_cost = 50.0;
    p.value_multiplier = 2.0;
    p.strategy = kind;
    return p;
  }
};

TEST(StrategyHelperTest, BundleForClusterMapsKinds) {
  StrategyFixture fx;
  const bid::Bundle b = BundleForCluster(fx.registry, "mid",
                                         {4.0, 16.0, 2.0});
  EXPECT_EQ(b.Size(), 3u);
  const auto cpu = fx.registry.Find(PoolKey{"mid", ResourceKind::kCpu});
  EXPECT_DOUBLE_EQ(b.QuantityOf(*cpu), 4.0);
}

TEST(StrategyHelperTest, BundleSkipsZeroComponents) {
  StrategyFixture fx;
  const bid::Bundle b =
      BundleForCluster(fx.registry, "mid", {4.0, 0.0, 0.0});
  EXPECT_EQ(b.Size(), 1u);
}

TEST(StrategyHelperTest, BelievedClusterCostUsesBeliefs) {
  StrategyFixture fx;
  PriceLearner learner(fx.reserve, 0.5, 0.0, 1.0);
  const double cost = BelievedClusterCost(fx.registry, learner, "cold",
                                          {10.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(cost, 50.0);
}

TEST(StrategyTest, TruthfulGrowthOffersAlternatives) {
  StrategyFixture fx;
  TeamAgent agent(fx.Profile(StrategyKind::kTruthfulGrowth), fx.reserve,
                  1);
  const auto bids = agent.MakeBids(fx.View());
  ASSERT_EQ(bids.size(), 1u);
  EXPECT_GT(bids[0].limit, 0.0);
  // Home plus at least one believed-cheaper alternative (cold is much
  // cheaper and has room).
  EXPECT_GE(bids[0].bundles.size(), 2u);
}

TEST(StrategyTest, TruthfulGrowthRespectsBudget) {
  StrategyFixture fx;
  TeamAgent agent(fx.Profile(StrategyKind::kTruthfulGrowth), fx.reserve,
                  1);
  const auto bids = agent.MakeBids(fx.View(/*budget=*/5.0));
  ASSERT_EQ(bids.size(), 1u);
  EXPECT_LE(bids[0].limit, 5.0);
}

TEST(StrategyTest, PremiumStickyStaysHome) {
  StrategyFixture fx;
  TeamAgent agent(fx.Profile(StrategyKind::kPremiumSticky), fx.reserve, 2);
  const auto bids = agent.MakeBids(fx.View());
  ASSERT_EQ(bids.size(), 1u);
  ASSERT_EQ(bids[0].bundles.size(), 1u);  // Home only, no alternatives.
  const auto hot_cpu = fx.registry.Find(PoolKey{"hot", ResourceKind::kCpu});
  EXPECT_GT(bids[0].bundles[0].QuantityOf(*hot_cpu), 0.0);
  // Pays a hefty premium over believed cost.
  PriceLearner fresh(fx.reserve, 0.5, 0.6, 0.35);
  const double believed = BelievedClusterCost(
      fx.registry, fresh, "hot",
      {4.0, 16.0, 2.0});
  EXPECT_GT(bids[0].limit, believed);
}

TEST(StrategyTest, OpportunistMoverSellsHomeAndRebuysCold) {
  StrategyFixture fx;
  TeamAgent agent(fx.Profile(StrategyKind::kOpportunistMover), fx.reserve,
                  3);
  const auto bids = agent.MakeBids(fx.View());
  ASSERT_EQ(bids.size(), 2u);
  // One offer (negative limit, pure sell), one rebuy (positive limit).
  const bid::Bid* offer = nullptr;
  const bid::Bid* rebuy = nullptr;
  for (const auto& b : bids) {
    if (b.limit <= 0.0) {
      offer = &b;
    } else {
      rebuy = &b;
    }
  }
  ASSERT_NE(offer, nullptr);
  ASSERT_NE(rebuy, nullptr);
  EXPECT_EQ(bid::ClassifyBid(*offer), bid::BidSide::kSeller);
  EXPECT_EQ(bid::ClassifyBid(*rebuy), bid::BidSide::kBuyer);
  // The offer vacates the home cluster.
  const auto hot_cpu = fx.registry.Find(PoolKey{"hot", ResourceKind::kCpu});
  EXPECT_LT(offer->bundles[0].QuantityOf(*hot_cpu), 0.0);
}

TEST(StrategyTest, MoverFallsBackWhenSpreadTooSmall) {
  StrategyFixture fx;
  TeamProfile profile = fx.Profile(StrategyKind::kOpportunistMover);
  profile.relocation_cost = 1e9;  // Never worth moving.
  TeamAgent agent(std::move(profile), fx.reserve, 4);
  const auto bids = agent.MakeBids(fx.View());
  // Falls back to truthful growth: a single buy bid.
  ASSERT_EQ(bids.size(), 1u);
  EXPECT_GT(bids[0].limit, 0.0);
}

TEST(StrategyTest, LowballSellerAsksTokenPrice) {
  StrategyFixture fx;
  TeamAgent agent(fx.Profile(StrategyKind::kLowballSeller), fx.reserve, 5);
  const auto bids = agent.MakeBids(fx.View());
  ASSERT_EQ(bids.size(), 1u);
  EXPECT_EQ(bid::ClassifyBid(bids[0]), bid::BidSide::kSeller);
  EXPECT_GE(bids[0].limit, -2.0);  // Token ask.
  EXPECT_LT(bids[0].limit, 0.0);
}

TEST(StrategyTest, ArbitrageurBuysDiscountedPools) {
  StrategyFixture fx;
  TeamAgent agent(fx.Profile(StrategyKind::kArbitrageur), fx.reserve, 6);
  // Beliefs start at reserves → no discount → no buy.
  EXPECT_TRUE(agent.MakeBids(fx.View()).empty());
  // After observing much higher settled prices everywhere, the reserve
  // looks like a discount.
  std::vector<double> settled = fx.reserve;
  for (double& p : settled) p *= 2.0;
  agent.ObserveOutcome(settled, {});
  const auto bids = agent.MakeBids(fx.View());
  ASSERT_EQ(bids.size(), 1u);
  EXPECT_EQ(bid::ClassifyBid(bids[0]), bid::BidSide::kBuyer);
}

TEST(StrategyTest, ArbitrageurResellsHoldings) {
  StrategyFixture fx;
  TeamAgent agent(fx.Profile(StrategyKind::kArbitrageur), fx.reserve, 7);
  agent.mutable_holdings().assign(fx.registry.size(), 0.0);
  agent.mutable_holdings()[6] = 100.0;  // Cold cpu warehoused.
  // Observe a crash in beliefs so that reserve >> belief → sell.
  std::vector<double> crash = fx.reserve;
  for (double& p : crash) p *= 0.3;
  agent.ObserveOutcome(crash, {});
  agent.ObserveOutcome(crash, {});
  const auto bids = agent.MakeBids(fx.View());
  bool has_sell = false;
  for (const auto& b : bids) {
    if (bid::ClassifyBid(b) == bid::BidSide::kSeller) has_sell = true;
  }
  EXPECT_TRUE(has_sell);
}

// ---------------------------------------------- placement feedback --

TEST(PlacementPenaltyTest, NoFeedbackLeavesMemoryEmpty) {
  StrategyFixture fx;
  TeamAgent agent(fx.Profile(StrategyKind::kTruthfulGrowth), fx.reserve,
                  1);
  // Gate-off-shaped outcomes: won, but no placement fields.
  std::vector<BidOutcome> outcomes(2);
  outcomes[0].won = true;
  outcomes[0].payment = 12.0;
  agent.ObserveOutcome(fx.reserve, outcomes);
  EXPECT_TRUE(agent.placement_penalty().empty());
}

TEST(PlacementPenaltyTest, FailuresRaiseAndCleanAuctionsForgive) {
  StrategyFixture fx;
  TeamAgent agent(fx.Profile(StrategyKind::kTruthfulGrowth), fx.reserve,
                  1);
  BidOutcome fail;
  fail.won = true;
  fail.awarded_units = 10.0;
  fail.placed_units = 0.0;
  fail.unplaced_pools = {6};
  agent.ObserveOutcome(fx.reserve, {fail});
  ASSERT_EQ(agent.placement_penalty().size(), fx.registry.size());
  EXPECT_DOUBLE_EQ(agent.placement_penalty()[6], kPlacementPenaltyStep);
  EXPECT_EQ(agent.placement_penalty()[0], 0.0);

  BidOutcome clean;
  clean.won = true;
  clean.awarded_units = 5.0;
  clean.placed_units = 5.0;
  agent.ObserveOutcome(fx.reserve, {clean});
  EXPECT_DOUBLE_EQ(agent.placement_penalty()[6],
                   kPlacementPenaltyStep * (1.0 - kPlacementPenaltyStep));

  // Chronic failure saturates (clamped at 1), never overshoots.
  for (int i = 0; i < 30; ++i) agent.ObserveOutcome(fx.reserve, {fail});
  EXPECT_GT(agent.placement_penalty()[6], 0.9);
  EXPECT_LE(agent.placement_penalty()[6], 1.0);
}

TEST(StrategyHelperTest, ClusterPlacementPenaltyTakesWorstKind) {
  StrategyFixture fx;
  std::vector<double> penalty(fx.registry.size(), 0.0);
  penalty[7] = 0.8;  // cold/ram.
  EXPECT_DOUBLE_EQ(
      ClusterPlacementPenalty(fx.registry, &penalty, "cold"), 0.8);
  EXPECT_DOUBLE_EQ(ClusterPlacementPenalty(fx.registry, &penalty, "mid"),
                   0.0);
  EXPECT_DOUBLE_EQ(ClusterPlacementPenalty(fx.registry, nullptr, "cold"),
                   0.0);
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(ClusterPlacementPenalty(fx.registry, &empty, "cold"),
                   0.0);
}

TEST(PlacementPenaltyTest, DistrustedClusterDropsOutOfGrowthBids) {
  StrategyFixture fx;
  TeamAgent agent(fx.Profile(StrategyKind::kTruthfulGrowth), fx.reserve,
                  1);
  const auto cold_cpu =
      fx.registry.Find(PoolKey{"cold", ResourceKind::kCpu});
  const auto mentions_cold = [&](const std::vector<bid::Bid>& bids) {
    for (const bid::Bid& b : bids) {
      for (const bid::Bundle& bundle : b.bundles) {
        if (bundle.QuantityOf(*cold_cpu) != 0.0) return true;
      }
    }
    return false;
  };
  // Baseline: cold is the cheapest alternative with room — bid on it.
  ASSERT_TRUE(mentions_cold(agent.MakeBids(fx.View())));

  // Three straight placement failures on cold's pools push its penalty
  // past the avoid bar (0.3 → 0.51 → 0.657 ≥ 0.6).
  BidOutcome fail;
  fail.won = true;
  fail.awarded_units = 10.0;
  fail.placed_units = 0.0;
  fail.unplaced_pools = {6, 7, 8};
  for (int i = 0; i < 3; ++i) agent.ObserveOutcome(fx.reserve, {fail});
  EXPECT_GE(agent.placement_penalty()[6], kPlacementPenaltyAvoid);
  EXPECT_FALSE(mentions_cold(agent.MakeBids(fx.View())));
}

TEST(StrategyTest, StrategyNamesRoundTrip) {
  for (StrategyKind kind :
       {StrategyKind::kTruthfulGrowth, StrategyKind::kPremiumSticky,
        StrategyKind::kOpportunistMover, StrategyKind::kLowballSeller,
        StrategyKind::kArbitrageur}) {
    EXPECT_EQ(MakeStrategy(kind)->Name(), ToString(kind));
  }
}

// ------------------------------------------------------------ workload gen --

TEST(WorkloadGenTest, GeneratesRequestedShape) {
  WorkloadConfig config;
  config.num_clusters = 8;
  config.num_teams = 20;
  config.min_machines_per_cluster = 10;
  config.max_machines_per_cluster = 20;
  config.seed = 7;
  const World world = GenerateWorld(config);
  EXPECT_EQ(world.fleet.NumClusters(), 8u);
  EXPECT_EQ(world.fleet.NumPools(), 24u);
  EXPECT_EQ(world.agents.size(), 20u);
  EXPECT_EQ(world.fixed_prices.size(), 24u);
  EXPECT_EQ(world.target_utilization.size(), 8u);
}

TEST(WorkloadGenTest, DeterministicInSeed) {
  WorkloadConfig config;
  config.num_clusters = 6;
  config.num_teams = 15;
  config.seed = 99;
  const World a = GenerateWorld(config);
  const World b = GenerateWorld(config);
  EXPECT_EQ(a.fleet.UtilizationVector(), b.fleet.UtilizationVector());
  ASSERT_EQ(a.agents.size(), b.agents.size());
  for (std::size_t i = 0; i < a.agents.size(); ++i) {
    EXPECT_EQ(a.agents[i].profile().name, b.agents[i].profile().name);
    EXPECT_EQ(a.agents[i].profile().home_cluster,
              b.agents[i].profile().home_cluster);
    EXPECT_EQ(a.agents[i].profile().footprint,
              b.agents[i].profile().footprint);
  }
}

TEST(WorkloadGenTest, DifferentSeedsDifferentWorlds) {
  WorkloadConfig config;
  config.num_clusters = 6;
  config.num_teams = 15;
  config.seed = 1;
  const World a = GenerateWorld(config);
  config.seed = 2;
  const World b = GenerateWorld(config);
  EXPECT_NE(a.fleet.UtilizationVector(), b.fleet.UtilizationVector());
}

TEST(WorkloadGenTest, UtilizationSpreadIsWide) {
  WorkloadConfig config;
  config.num_clusters = 12;
  config.num_teams = 60;
  config.seed = 5;
  const World world = GenerateWorld(config);
  double lo = 1.0, hi = 0.0;
  for (const std::string& name : world.fleet.ClusterNames()) {
    const double u =
        world.fleet.ClusterByName(name).Utilization(ResourceKind::kCpu);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.35);  // Some cold clusters.
  EXPECT_GT(hi, 0.70);  // Some hot clusters.
}

TEST(WorkloadGenTest, EveryTeamHasViableProfile) {
  WorkloadConfig config;
  config.num_clusters = 6;
  config.num_teams = 30;
  config.seed = 11;
  const World world = GenerateWorld(config);
  for (const TeamAgent& agent : world.agents) {
    const TeamProfile& p = agent.profile();
    EXPECT_FALSE(p.name.empty());
    EXPECT_TRUE(world.fleet.HasCluster(p.home_cluster));
    EXPECT_GE(p.footprint.cpu, 1.0);
    EXPECT_GT(p.relocation_cost, 0.0);
    EXPECT_GE(p.value_multiplier, 1.0);
  }
}

TEST(WorkloadGenTest, FixedPricesMatchUnitCosts) {
  WorkloadConfig config;
  config.num_clusters = 3;
  config.num_teams = 5;
  config.seed = 3;
  const World world = GenerateWorld(config);
  for (PoolId r = 0; r < world.fleet.NumPools(); ++r) {
    const ResourceKind kind = world.fleet.registry().KeyOf(r).kind;
    EXPECT_DOUBLE_EQ(world.fixed_prices[r],
                     config.unit_costs.Of(kind));
  }
}

TEST(WorkloadGenTest, StrategyMixRoughlyMatchesFractions) {
  WorkloadConfig config;
  config.num_clusters = 10;
  config.num_teams = 400;
  config.seed = 23;
  const World world = GenerateWorld(config);
  int premium = 0, movers = 0;
  for (const TeamAgent& agent : world.agents) {
    if (agent.profile().strategy == StrategyKind::kPremiumSticky) {
      ++premium;
    }
    if (agent.profile().strategy == StrategyKind::kOpportunistMover) {
      ++movers;
    }
  }
  EXPECT_NEAR(premium / 400.0, config.frac_premium_sticky, 0.06);
  EXPECT_NEAR(movers / 400.0, config.frac_opportunist_mover, 0.06);
}

TEST(WorkloadGenTest, InvalidConfigThrows) {
  WorkloadConfig config;
  config.num_clusters = 1;
  EXPECT_THROW(GenerateWorld(config), pm::CheckFailure);
}

}  // namespace
}  // namespace pm::agents
