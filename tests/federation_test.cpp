// Tests for pm::federation: the federated multi-market exchange.
//
// The contract under test is the determinism story of
// docs/federation.md: a federated epoch is (1) per shard bit-identical to
// running that shard's Market standalone with the same bids and seeds,
// (2) bit-identical across thread counts and across reruns, and (3) per
// shard bit-identical between the in-process serial path and the pm::net
// proxy-node path. Plus the router's placement properties: every
// non-split bid lands on exactly one shard, and split parts conserve the
// requested quantity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "federation/federated_exchange.h"
#include "federation/report.h"
#include "federation/router.h"

namespace pm::federation {
namespace {

// ------------------------------------------------------------- fixtures --

agents::WorkloadConfig SmallWorkload() {
  agents::WorkloadConfig config;
  config.num_clusters = 4;
  config.num_teams = 12;
  config.min_machines_per_cluster = 10;
  config.max_machines_per_cluster = 20;
  return config;
}

exchange::MarketConfig FastMarket() {
  exchange::MarketConfig config;
  config.auction.alpha = 0.4;
  config.auction.delta = 0.08;
  config.auction.max_rounds = 30000;
  return config;
}

std::vector<ShardSpec> FourShards(
    exchange::MarketConfig market = FastMarket()) {
  std::vector<ShardSpec> specs;
  for (int k = 0; k < 4; ++k) {
    ShardSpec spec;
    spec.name = "region-" + std::to_string(k);
    spec.workload = SmallWorkload();
    spec.market = market;
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Bitwise equality for doubles (EXPECT_EQ would use ==, which is what we
/// want, but NaN premiums must also match).
void ExpectSameVector(const std::vector<double>& a,
                      const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::isnan(a[i]) || std::isnan(b[i])) {
      EXPECT_TRUE(std::isnan(a[i]) && std::isnan(b[i])) << "index " << i;
    } else {
      EXPECT_EQ(a[i], b[i]) << "index " << i;
    }
  }
}

void ExpectSameReport(const exchange::AuctionReport& a,
                      const exchange::AuctionReport& b) {
  EXPECT_EQ(a.num_bids, b.num_bids);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.converged, b.converged);
  ExpectSameVector(a.reserve_prices, b.reserve_prices);
  ExpectSameVector(a.settled_prices, b.settled_prices);
  ExpectSameVector(a.post_utilization, b.post_utilization);
  EXPECT_EQ(a.operator_revenue, b.operator_revenue);
  EXPECT_EQ(a.jobs_added, b.jobs_added);
  EXPECT_EQ(a.jobs_removed, b.jobs_removed);
  ASSERT_EQ(a.awards.size(), b.awards.size());
  for (std::size_t i = 0; i < a.awards.size(); ++i) {
    EXPECT_EQ(a.awards[i].team, b.awards[i].team);
    EXPECT_EQ(a.awards[i].bid_name, b.awards[i].bid_name);
    EXPECT_EQ(a.awards[i].bundle_index, b.awards[i].bundle_index);
    EXPECT_EQ(a.awards[i].payment, b.awards[i].payment);
  }
}

// ----------------------------------------------------------- seed wiring --

TEST(FederationSeedTest, ShardSeedsAreStableAndDistinct) {
  const std::uint64_t base = 777;
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_EQ(FederatedExchange::ShardWorkloadSeed(base, k),
              FederatedExchange::ShardWorkloadSeed(base, k));
    EXPECT_NE(FederatedExchange::ShardWorkloadSeed(base, k),
              FederatedExchange::ShardMarketSeed(base, k));
    for (std::size_t j = 0; j < k; ++j) {
      EXPECT_NE(FederatedExchange::ShardWorkloadSeed(base, k),
                FederatedExchange::ShardWorkloadSeed(base, j));
    }
  }
}

TEST(FederationSeedTest, MarketsWithDistinctSeedsHaveIndependentStreams) {
  agents::World world_a = GenerateWorld(SmallWorkload());
  agents::World world_b = GenerateWorld(SmallWorkload());
  exchange::MarketConfig config_a = FastMarket();
  exchange::MarketConfig config_b = FastMarket();
  config_a.seed = 1;
  config_b.seed = 2;
  exchange::Market a(&world_a.fleet, &world_a.agents, world_a.fixed_prices,
                     config_a);
  exchange::Market b(&world_b.fleet, &world_b.agents, world_b.fixed_prices,
                     config_b);
  EXPECT_EQ(a.seed(), 1u);
  bool any_diff = false;
  for (int i = 0; i < 8; ++i) {
    any_diff = any_diff || (a.rng().NextRaw() != b.rng().NextRaw());
  }
  EXPECT_TRUE(any_diff) << "distinct seeds must give distinct streams";

  // Same seed ⇒ identical stream.
  agents::World world_c = GenerateWorld(SmallWorkload());
  exchange::Market c(&world_c.fleet, &world_c.agents, world_c.fixed_prices,
                     config_a);
  agents::World world_d = GenerateWorld(SmallWorkload());
  exchange::Market d(&world_d.fleet, &world_d.agents, world_d.fixed_prices,
                     config_a);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(c.rng().NextRaw(), d.rng().NextRaw());
  }
}

// ------------------------------------------- standalone shard equivalence --

TEST(FederatedExchangeTest, EpochMatchesStandaloneShardBitForBit) {
  FederationConfig config;
  config.seed = 20090425;
  FederatedExchange fed(FourShards(), config);

  // Two epochs federated...
  const FederationReport first = fed.RunEpoch();
  const FederationReport second = fed.RunEpoch();
  ASSERT_EQ(first.shards.size(), 4u);

  // ...must equal, per shard, two standalone auctions on a market rebuilt
  // from the same derived seeds.
  for (std::size_t k = 0; k < 4; ++k) {
    agents::WorkloadConfig workload = SmallWorkload();
    workload.seed = FederatedExchange::ShardWorkloadSeed(config.seed, k);
    exchange::MarketConfig market_config = FastMarket();
    market_config.seed = FederatedExchange::ShardMarketSeed(config.seed, k);
    agents::World world = GenerateWorld(workload);
    exchange::Market market(&world.fleet, &world.agents,
                            world.fixed_prices, market_config);
    ExpectSameReport(first.shards[k].report, market.RunAuction());
    ExpectSameReport(second.shards[k].report, market.RunAuction());
  }
}

TEST(FederatedExchangeTest, RoutedBidsReplayIdenticallyOnStandaloneShard) {
  FederationConfig config;
  config.seed = 99;
  config.router.policy = RoutingPolicy::kCheapestPrice;
  FederatedExchange fed(FourShards(), config);
  fed.EndowFederatedTeam("globex", Money::FromDollars(500000));

  FederatedBid bid;
  bid.team = "globex";
  bid.tag = "rollout";
  bid.quantity = cluster::TaskShape{40.0, 160.0, 4.0};
  bid.limit = 100000.0;
  fed.SubmitFederatedBid(bid);

  const FederationReport report = fed.RunEpoch();
  ASSERT_EQ(report.routed.size(), 1u);
  const RoutedBid& routed = report.routed.front();

  // Rebuild the target shard standalone, inject the identical external
  // bid with the identical endowment, and compare bit for bit.
  agents::WorkloadConfig workload = SmallWorkload();
  workload.seed =
      FederatedExchange::ShardWorkloadSeed(config.seed, routed.shard);
  exchange::MarketConfig market_config = FastMarket();
  market_config.seed =
      FederatedExchange::ShardMarketSeed(config.seed, routed.shard);
  agents::World world = GenerateWorld(workload);
  exchange::Market market(&world.fleet, &world.agents, world.fixed_prices,
                          market_config);
  market.EndowTeam("globex", Money::FromDollars(500000),
                   "federation endowment");
  market.SubmitExternalBid(
      exchange::Market::ExternalBid{routed.team, routed.bid});
  ExpectSameReport(report.shards[routed.shard].report, market.RunAuction());
}

// ------------------------------------------------------------ determinism --

TEST(FederatedExchangeTest, EpochIsBitIdenticalAcrossThreadCounts) {
  std::vector<FederationReport> runs;
  for (const std::size_t threads : {std::size_t{0}, std::size_t{4},
                                    std::size_t{4}}) {
    FederationConfig config;
    config.seed = 4242;
    config.num_threads = threads;
    FederatedExchange fed(FourShards(), config);
    fed.EndowFederatedTeam("globex", Money::FromDollars(100000));
    FederatedBid bid;
    bid.team = "globex";
    bid.tag = "burst";
    bid.quantity = cluster::TaskShape{16.0, 64.0, 2.0};
    bid.limit = 20000.0;
    fed.SubmitFederatedBid(bid);
    fed.RunEpoch();
    runs.push_back(fed.RunEpoch());  // Second epoch: compounded state.
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    ASSERT_EQ(runs[0].shards.size(), runs[i].shards.size());
    EXPECT_EQ(runs[0].total_bids, runs[i].total_bids);
    EXPECT_EQ(runs[0].operator_revenue, runs[i].operator_revenue);
    EXPECT_EQ(runs[0].utilization_spread, runs[i].utilization_spread);
    for (std::size_t k = 0; k < runs[0].shards.size(); ++k) {
      ExpectSameReport(runs[0].shards[k].report, runs[i].shards[k].report);
    }
  }
}

// --------------------------------------------------------- proxy-node path --

TEST(FederatedExchangeTest, SerialAndProxyNodePathsAreBitIdentical) {
  // The wire protocol cannot host the serial-only bisection refinement,
  // so both paths run the pure clock for this comparison.
  exchange::MarketConfig market = FastMarket();
  market.auction.intra_round_bisection = false;

  FederationConfig serial_config;
  serial_config.seed = 31337;
  FederatedExchange serial(FourShards(market), serial_config);

  FederationConfig proxy_config;
  proxy_config.seed = 31337;
  proxy_config.proxy_nodes_per_shard = 3;
  FederatedExchange proxied(FourShards(market), proxy_config);

  const FederationReport serial_report = serial.RunEpoch();
  const FederationReport proxy_report = proxied.RunEpoch();
  ASSERT_EQ(serial_report.shards.size(), proxy_report.shards.size());
  for (std::size_t k = 0; k < serial_report.shards.size(); ++k) {
    ExpectSameReport(serial_report.shards[k].report,
                     proxy_report.shards[k].report);
    // Distribution changes where the work runs, not the mechanism — but
    // it must actually have gone over the wire.
    EXPECT_EQ(serial_report.shards[k].report.transport_messages, 0);
    EXPECT_GT(proxy_report.shards[k].report.transport_messages, 0);
    EXPECT_GT(proxy_report.shards[k].report.transport_bytes, 0);
  }
  EXPECT_GT(proxy_report.transport_messages, 0);
}

TEST(FederatedExchangeTest, ProxyModeRejectsSerialOnlyKnobs) {
  FederationConfig config;
  config.proxy_nodes_per_shard = 2;
  // Default market auction config enables intra-round bisection, which the
  // wire path cannot host: construction must fail loudly, not silently
  // drop the knob.
  EXPECT_THROW(FederatedExchange(FourShards(exchange::MarketConfig{}),
                                 config),
               CheckFailure);
}

TEST(FederatedExchangeTest, RejectsBadFederatedBidsAtSubmitTime) {
  FederationConfig config;
  FederatedExchange fed(FourShards(), config);
  FederatedBid no_team;
  no_team.quantity = cluster::TaskShape{1.0, 1.0, 0.0};
  no_team.limit = 10.0;
  EXPECT_THROW(fed.SubmitFederatedBid(no_team), CheckFailure);
  FederatedBid bad_home;
  bad_home.team = "t";
  bad_home.quantity = cluster::TaskShape{1.0, 1.0, 0.0};
  bad_home.limit = 10.0;
  bad_home.home_shard = "atlantis";
  EXPECT_THROW(fed.SubmitFederatedBid(bad_home), CheckFailure);
  EXPECT_EQ(fed.PendingFederatedBids(), 0u);  // Nothing wedged the queue.
}

TEST(FederatedExchangeTest, RejectsPerShardWireSettings) {
  // The wire path is federation-wide; a per-shard setting would be
  // silently overwritten, so it is rejected instead.
  exchange::MarketConfig market = FastMarket();
  market.distributed_proxy_nodes = 2;
  EXPECT_THROW(
      FederatedExchange(FourShards(market), FederationConfig{}),
      CheckFailure);
}

// ----------------------------------------------------------------- router --

/// Builds a synthetic two-cluster shard view with uniform prices.
ShardView MakeView(const std::string& name, PoolRegistry& registry,
                   double reserve_scale, double free_units) {
  ShardView view;
  view.name = name;
  for (const char* cluster : {"a", "b"}) {
    for (ResourceKind kind : kAllResourceKinds) {
      registry.Intern(PoolKey{std::string(name) + "-" + cluster, kind});
    }
  }
  view.registry = &registry;
  view.fixed_prices.assign(registry.size(), 1.0);
  view.reserve_prices.assign(registry.size(), reserve_scale);
  view.free_capacity.assign(registry.size(), free_units);
  return view;
}

struct RouterFixture {
  std::vector<PoolRegistry> registries;
  std::vector<ShardView> views;

  explicit RouterFixture(std::vector<std::pair<double, double>> shards) {
    registries.resize(shards.size());
    for (std::size_t s = 0; s < shards.size(); ++s) {
      views.push_back(MakeView("shard" + std::to_string(s), registries[s],
                               shards[s].first, shards[s].second));
    }
  }
};

double BundleTotal(const bid::Bid& bid) {
  double total = 0.0;
  for (const bid::BundleItem& item : bid.bundles.front().items()) {
    total += item.qty;
  }
  return total;
}

TEST(MarketRouterTest, NonSplitPoliciesPlaceEveryBidOnExactlyOneShard) {
  RouterFixture fixture({{1.0, 100.0}, {2.0, 100.0}, {3.0, 100.0}});
  RandomStream rng(7);
  std::vector<FederatedBid> bids;
  for (int i = 0; i < 64; ++i) {
    FederatedBid bid;
    bid.team = "t" + std::to_string(i);
    bid.quantity = cluster::TaskShape{rng.Uniform(1.0, 40.0),
                                      rng.Uniform(1.0, 80.0),
                                      rng.Uniform(0.0, 4.0)};
    bid.limit = rng.Uniform(10.0, 1000.0);
    bid.home_shard = "shard" + std::to_string(rng.UniformInt(0, 2));
    bids.push_back(std::move(bid));
  }
  for (const RoutingPolicy policy :
       {RoutingPolicy::kHomeAffinity, RoutingPolicy::kCheapestPrice}) {
    RouterConfig config;
    config.policy = policy;
    config.spill_threshold = 100.0;  // Nothing spills here.
    MarketRouter router(config, fixture.views);
    const RoutingResult result = router.Route(bids);
    ASSERT_EQ(result.decisions.size(), bids.size());
    ASSERT_EQ(result.routed.size(), bids.size());
    for (std::size_t i = 0; i < bids.size(); ++i) {
      ASSERT_EQ(result.decisions[i].shards.size(), 1u) << ToString(policy);
      EXPECT_LT(result.decisions[i].shards.front(), fixture.views.size());
      EXPECT_FALSE(result.decisions[i].spilled);
    }
    // Quantity is conserved bid-for-bid.
    for (std::size_t i = 0; i < bids.size(); ++i) {
      double requested = 0.0;
      for (ResourceKind kind : kAllResourceKinds) {
        requested += bids[i].quantity.Of(kind);
      }
      EXPECT_NEAR(BundleTotal(result.routed[i].bid), requested, 1e-12);
      EXPECT_EQ(result.routed[i].bid.limit, bids[i].limit);
    }
  }
}

TEST(MarketRouterTest, SplitConservesQuantityAndLimit) {
  RouterFixture fixture({{1.0, 50.0}, {1.5, 200.0}, {2.0, 100.0},
                         {2.5, 25.0}});
  RouterConfig config;
  config.policy = RoutingPolicy::kSplit;
  config.spill_threshold = 100.0;
  MarketRouter router(config, fixture.views);
  RandomStream rng(11);
  for (int i = 0; i < 32; ++i) {
    FederatedBid bid;
    bid.team = "t";
    bid.quantity = cluster::TaskShape{rng.Uniform(1.0, 200.0),
                                      rng.Uniform(1.0, 400.0),
                                      rng.Uniform(0.0, 10.0)};
    bid.limit = rng.Uniform(10.0, 5000.0);
    const RoutingResult result = router.Route({bid});
    ASSERT_EQ(result.decisions.size(), 1u);
    cluster::TaskShape total;
    double limit_total = 0.0;
    std::vector<std::size_t> seen;
    for (const RoutedBid& part : result.routed) {
      seen.push_back(part.shard);
      limit_total += part.bid.limit;
      for (const bid::BundleItem& item : part.bid.bundles.front().items()) {
        const PoolKey& key = fixture.views[part.shard].registry->KeyOf(
            item.pool);
        total.Of(key.kind) += item.qty;
        EXPECT_GT(item.qty, 0.0);
      }
    }
    // Every part on a distinct shard; totals conserved.
    std::sort(seen.begin(), seen.end());
    EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) == seen.end());
    for (ResourceKind kind : kAllResourceKinds) {
      EXPECT_NEAR(total.Of(kind), bid.quantity.Of(kind), 1e-9)
          << ToString(kind);
    }
    EXPECT_NEAR(limit_total, bid.limit, 1e-9);
  }
}

TEST(MarketRouterTest, MirroredPlacesFullCopiesOnCheapestShards) {
  RouterFixture fixture({{3.0, 100.0}, {1.0, 100.0}, {2.0, 100.0}});
  RouterConfig config;
  config.policy = RoutingPolicy::kMirrored;
  config.mirror_ways = 2;
  MarketRouter router(config, fixture.views);
  FederatedBid bid;
  bid.team = "t";
  bid.quantity = cluster::TaskShape{10.0, 20.0, 1.0};
  bid.limit = 500.0;
  const RoutingResult result = router.Route({bid});
  ASSERT_EQ(result.routed.size(), 2u);
  // Cheapest two shards (1 then 2), each carrying the full quantity.
  EXPECT_EQ(result.routed[0].shard, 1u);
  EXPECT_EQ(result.routed[1].shard, 2u);
  for (const RoutedBid& part : result.routed) {
    EXPECT_NEAR(BundleTotal(part.bid), 31.0, 1e-12);
    EXPECT_EQ(part.bid.limit, 500.0);
  }
}

TEST(MarketRouterTest, SpilloverReroutesOffHotShard) {
  // shard0 quotes 10x its fixed cost (hot); shard1 is at par.
  RouterFixture fixture({{10.0, 100.0}, {1.0, 100.0}});
  RouterConfig config;
  config.policy = RoutingPolicy::kHomeAffinity;
  config.spill_threshold = 3.0;
  MarketRouter router(config, fixture.views);
  FederatedBid bid;
  bid.team = "t";
  bid.quantity = cluster::TaskShape{10.0, 10.0, 1.0};
  bid.limit = 1000.0;
  bid.home_shard = "shard0";
  const RoutingResult result = router.Route({bid});
  ASSERT_EQ(result.routed.size(), 1u);
  EXPECT_EQ(result.decisions[0].preferred_shard, 0u);
  EXPECT_TRUE(result.decisions[0].spilled);
  EXPECT_EQ(result.routed[0].shard, 1u);
  EXPECT_GT(result.decisions[0].preferred_heat, 3.0);

  // Under a lax threshold the same bid stays home.
  config.spill_threshold = 50.0;
  MarketRouter lax(config, fixture.views);
  const RoutingResult stay = lax.Route({bid});
  EXPECT_FALSE(stay.decisions[0].spilled);
  EXPECT_EQ(stay.routed[0].shard, 0u);
}

TEST(MarketRouterTest, ShardsMissingARequestedKindAreSkippedNotFatal) {
  // shard0's registry covers only CPU; shard1 covers everything. A bid
  // asking for RAM must skip shard0 (even though it is cheaper) instead
  // of aborting the routing pass.
  PoolRegistry cpu_only;
  cpu_only.Intern(PoolKey{"solo", ResourceKind::kCpu});
  ShardView partial;
  partial.name = "cpu-only";
  partial.registry = &cpu_only;
  partial.reserve_prices.assign(cpu_only.size(), 0.1);
  partial.free_capacity.assign(cpu_only.size(), 1000.0);
  partial.fixed_prices.assign(cpu_only.size(), 1.0);
  PoolRegistry full;
  std::vector<ShardView> views{partial, MakeView("full", full, 5.0, 100.0)};

  FederatedBid bid;
  bid.team = "t";
  bid.quantity = cluster::TaskShape{4.0, 16.0, 0.0};
  bid.limit = 100.0;
  for (const RoutingPolicy policy :
       {RoutingPolicy::kCheapestPrice, RoutingPolicy::kSplit,
        RoutingPolicy::kMirrored}) {
    RouterConfig config;
    config.policy = policy;
    config.spill_threshold = 100.0;
    MarketRouter router(config, views);
    const RoutingResult result = router.Route({bid});
    ASSERT_FALSE(result.routed.empty()) << ToString(policy);
    for (const RoutedBid& part : result.routed) {
      EXPECT_EQ(part.shard, 1u) << ToString(policy);
    }
  }
  // A kind no shard covers is recorded as unroutable, not fatal.
  FederatedBid impossible = bid;
  impossible.quantity = cluster::TaskShape{0.0, 8.0, 0.0};
  PoolRegistry cpu_only2;
  cpu_only2.Intern(PoolKey{"solo", ResourceKind::kCpu});
  ShardView partial2 = partial;
  partial2.registry = &cpu_only2;
  MarketRouter only_cpu(RouterConfig{}, {partial2});
  const RoutingResult none = only_cpu.Route({impossible});
  EXPECT_TRUE(none.routed.empty());
  ASSERT_EQ(none.decisions.size(), 1u);
  EXPECT_TRUE(none.decisions[0].shards.empty());
}

TEST(MarketRouterTest, PlacementFailureRateHeatsShardQuotes) {
  // shard0 is cheap but has recently failed to place everything it
  // awarded; shard1 is pricier and delivers. Without the heat gate the
  // home bid stays on shard0; with it, shard0 reads hot and the bid
  // spills.
  RouterFixture fixture({{1.0, 100.0}, {1.5, 100.0}});
  fixture.views[0].placement_failure_rate = 1.0;
  RouterConfig config;
  config.policy = RoutingPolicy::kHomeAffinity;
  config.spill_threshold = 3.0;
  FederatedBid bid;
  bid.team = "t";
  bid.quantity = cluster::TaskShape{10.0, 10.0, 1.0};
  bid.limit = 1000.0;
  bid.home_shard = "shard0";

  MarketRouter blind(config, fixture.views);
  const RoutingResult stay = blind.Route({bid});
  EXPECT_FALSE(stay.decisions[0].spilled);
  EXPECT_EQ(stay.routed[0].shard, 0u);

  config.failure_heat_weight = 10.0;  // Heat 1.0 → 11.0 on shard0.
  MarketRouter aware(config, fixture.views);
  const RoutingResult spill = aware.Route({bid});
  EXPECT_TRUE(spill.decisions[0].spilled);
  EXPECT_EQ(spill.routed[0].shard, 1u);
  EXPECT_GT(spill.decisions[0].preferred_heat, config.spill_threshold);
}

TEST(MarketRouterTest, BudgetPressureTightensTheSpillThreshold) {
  // Home shard warm (heat 2.5, inside the 3.0 threshold); shard1 cool.
  RouterFixture fixture({{2.5, 100.0}, {1.0, 100.0}});
  RouterConfig config;
  config.policy = RoutingPolicy::kHomeAffinity;
  config.spill_threshold = 3.0;
  config.budget_pressure = 1.0;
  config.budget_comfort = 4.0;
  MarketRouter router(config, fixture.views);
  FederatedBid bid;
  bid.team = "t";
  bid.quantity = cluster::TaskShape{10.0, 10.0, 1.0};
  bid.limit = 1000.0;
  bid.home_shard = "shard0";

  // The threshold ramps with the remaining planet balance.
  EXPECT_DOUBLE_EQ(router.EffectiveSpillThreshold(bid, 4000.0), 3.0);
  EXPECT_DOUBLE_EQ(router.EffectiveSpillThreshold(bid, 2000.0), 1.5);
  EXPECT_NEAR(router.EffectiveSpillThreshold(bid, 0.0), 1.0, 1e-6);

  // A rich team pays the warm home price; a broke one spills to the
  // cool shard early.
  const RoutingResult rich = router.Route({bid}, {{"t", 1000000.0}});
  EXPECT_FALSE(rich.decisions[0].spilled);
  EXPECT_EQ(rich.routed[0].shard, 0u);
  EXPECT_DOUBLE_EQ(rich.decisions[0].spill_threshold, 3.0);

  const RoutingResult broke = router.Route({bid}, {{"t", 0.0}});
  EXPECT_TRUE(broke.decisions[0].spilled);
  EXPECT_EQ(broke.routed[0].shard, 1u);
  EXPECT_LT(broke.decisions[0].spill_threshold, 2.5);

  // Teams absent from the balance map route as if unconstrained, and
  // the balance-free overload is the rich case.
  const RoutingResult unknown = router.Route({bid}, {{"other", 0.0}});
  EXPECT_FALSE(unknown.decisions[0].spilled);
  const RoutingResult legacy = router.Route({bid});
  EXPECT_FALSE(legacy.decisions[0].spilled);
}

TEST(MarketRouterTest, UnroutableBidsAreRecordedWithoutParts) {
  RouterFixture fixture({{1.0, 100.0}});
  MarketRouter router(RouterConfig{}, fixture.views);
  FederatedBid zero_quantity;
  zero_quantity.team = "t";
  zero_quantity.limit = 10.0;
  FederatedBid zero_limit;
  zero_limit.team = "t";
  zero_limit.quantity = cluster::TaskShape{1.0, 1.0, 0.0};
  const RoutingResult result = router.Route({zero_quantity, zero_limit});
  EXPECT_TRUE(result.routed.empty());
  ASSERT_EQ(result.decisions.size(), 2u);
  EXPECT_TRUE(result.decisions[0].shards.empty());
  EXPECT_TRUE(result.decisions[1].shards.empty());
}

// --------------------------------------------------------- reporting plane --

TEST(FederationReportTest, AggregatesAcrossShards) {
  FederationConfig config;
  config.seed = 55;
  FederatedExchange fed(FourShards(), config);
  const FederationReport report = fed.RunEpoch();
  std::size_t bids = 0;
  double revenue = 0.0;
  for (const ShardEpochSummary& shard : report.shards) {
    bids += shard.report.num_bids;
    revenue += shard.report.operator_revenue;
  }
  EXPECT_EQ(report.total_bids, bids);
  EXPECT_EQ(report.operator_revenue, revenue);
  EXPECT_EQ(report.utilization_deciles.size(), 9u);
  for (std::size_t i = 1; i < report.utilization_deciles.size(); ++i) {
    EXPECT_GE(report.utilization_deciles[i],
              report.utilization_deciles[i - 1]);
  }
  const std::string page = RenderFederationSummary(report);
  EXPECT_NE(page.find("planet"), std::string::npos);
  EXPECT_NE(page.find("region-0"), std::string::npos);
}

// ----------------------------------------------- external bids (exchange) --

TEST(ExternalBidTest, SettlesThroughTheNormalPath) {
  agents::World world = GenerateWorld(SmallWorkload());
  exchange::Market market(&world.fleet, &world.agents, world.fixed_prices,
                          FastMarket());
  market.EndowTeam("offworld", Money::FromDollars(1000000),
                   "test endowment");

  // A concrete bid in the market's own pool space, generous limit. Target
  // the cluster with the most CPU headroom so placement cannot fail.
  std::string cluster;
  double best_free = -1.0;
  for (const std::string& name : world.fleet.ClusterNames()) {
    const double free = world.fleet.FreeShape(name).cpu;
    if (free > best_free) {
      best_free = free;
      cluster = name;
    }
  }
  const PoolRegistry& registry = world.fleet.registry();
  std::vector<bid::BundleItem> items;
  items.push_back(bid::BundleItem{
      *registry.Find(PoolKey{cluster, ResourceKind::kCpu}), 8.0});
  items.push_back(bid::BundleItem{
      *registry.Find(PoolKey{cluster, ResourceKind::kRam}), 32.0});
  bid::Bid bid;
  bid.name = "fed/offworld/landing";
  bid.bundles.emplace_back(std::move(items));
  bid.limit = 500000.0;
  market.SubmitExternalBid(
      exchange::Market::ExternalBid{"offworld", bid});
  EXPECT_EQ(market.PendingExternalBids(), 1u);

  const exchange::AuctionReport report = market.RunAuction();
  EXPECT_EQ(market.PendingExternalBids(), 0u);
  bool awarded = false;
  for (const exchange::AwardRecord& award : report.awards) {
    if (award.team == "offworld") {
      awarded = true;
      EXPECT_EQ(award.bid_name, "fed/offworld/landing");
    }
  }
  ASSERT_TRUE(awarded) << "a generous uncontested buy bid must win";
  // The external team's jobs are physically placed and its quota charged.
  bool has_job = false;
  for (const cluster::JobLocation& loc : world.fleet.AllJobs()) {
    const cluster::Job* job =
        world.fleet.ClusterByName(loc.cluster).FindJob(loc.job);
    if (job != nullptr && job->team == "offworld") has_job = true;
  }
  EXPECT_TRUE(has_job);
  EXPECT_LT(market.TeamBudget("offworld"), Money::FromDollars(1000000));
}

TEST(ExternalBidTest, UnfundedExternalBuyIsRejectedAndCounted) {
  agents::World world = GenerateWorld(SmallWorkload());
  exchange::Market market(&world.fleet, &world.agents, world.fixed_prices,
                          FastMarket());
  // No endowment: the buy limit clamps to the zero budget and the bid is
  // rejected at the gate — visibly, not silently.
  bid::Bid bid;
  bid.name = "fed/ghost/unfunded";
  bid.bundles.push_back(bid::Bundle{bid::BundleItem{0, 4.0}});
  bid.limit = 1000.0;
  market.SubmitExternalBid(exchange::Market::ExternalBid{"ghost", bid});
  const exchange::AuctionReport report = market.RunAuction();
  EXPECT_EQ(report.external_rejected, 1u);
  // The per-bid trace names the starved bid and blames the budget gate,
  // not validation — the signal routing layers assert on.
  ASSERT_EQ(report.external_rejections.size(), 1u);
  EXPECT_EQ(report.external_rejections[0].team, "ghost");
  EXPECT_EQ(report.external_rejections[0].bid_name, "fed/ghost/unfunded");
  EXPECT_EQ(report.external_rejections[0].reason,
            exchange::ExternalRejection::Reason::kBudget);
  for (const exchange::AwardRecord& award : report.awards) {
    EXPECT_NE(award.team, "ghost");
  }
}

}  // namespace
}  // namespace pm::federation
