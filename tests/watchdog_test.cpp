// Tests for the watchdog plane (telemetry/rules.h, telemetry/alerts.h,
// telemetry/console.h) and its federation/scenario wiring.
//
// The contracts under test:
//   1. recording rules — per-epoch counter rates, zero-safe ratios and
//      per-kind spreads land in the registry under `derived:` and ride
//      the epoch snapshots;
//   2. alert lifecycle — inactive → pending → firing → resolved in
//      logical epoch time, with for_epochs hysteresis and absence rules;
//   3. off means off — telemetry-on-watchdog-off emits no derived
//      series, no watchdog gauges, and identical scenario outcomes;
//   4. SLO assertions — expect_alert/forbid_alert fail scenarios on
//      missing AND on spurious alerts (both directions);
//   5. golden contract — the outage-during-price-war metrics and
//      alert-timeline documents are byte-stable against tests/golden/;
//   6. flight recorder — ring overwrites are counted and surfaced in
//      containment dumps; alert transitions are mirrored into the rings.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "federation/federated_exchange.h"
#include "federation/report.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "telemetry/alerts.h"
#include "telemetry/console.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/registry.h"
#include "telemetry/rules.h"
#include "telemetry/telemetry.h"

namespace pm::telemetry {
namespace {

// ------------------------------------------------------ recording rules --

TEST(RuleEngineTest, CounterRateDifferencesPerLabelSet) {
  MetricsRegistry reg;
  RuleEngine engine({{RecordingRule::Kind::kCounterRate, "fails_rate",
                      "fails", ""}});
  reg.AddCounter("fails", Labels{"a", "", ""}, 2.0);
  reg.AddCounter("fails", Labels{"b", "", ""}, 5.0);
  engine.EvaluateEpoch(reg);
  EXPECT_DOUBLE_EQ(
      reg.GaugeValue("derived:fails_rate", Labels{"a", "", ""}), 2.0);
  EXPECT_DOUBLE_EQ(
      reg.GaugeValue("derived:fails_rate", Labels{"b", "", ""}), 5.0);

  // Next epoch: only the delta shows, not the cumulative value.
  reg.AddCounter("fails", Labels{"a", "", ""}, 1.0);
  engine.EvaluateEpoch(reg);
  EXPECT_DOUBLE_EQ(
      reg.GaugeValue("derived:fails_rate", Labels{"a", "", ""}), 1.0);
  EXPECT_DOUBLE_EQ(
      reg.GaugeValue("derived:fails_rate", Labels{"b", "", ""}), 0.0);
}

TEST(RuleEngineTest, RatioIsZeroOnZeroDenominator) {
  MetricsRegistry reg;
  RuleEngine engine(
      {{RecordingRule::Kind::kRatio, "refund_rate", "refunds", "awards"}});
  reg.AddCounter("refunds", Labels{"a", "", ""}, 3.0);
  reg.AddCounter("awards", Labels{"a", "", ""}, 12.0);
  reg.AddCounter("refunds", Labels{"b", "", ""}, 7.0);  // No awards at all.
  engine.EvaluateEpoch(reg);
  EXPECT_DOUBLE_EQ(
      reg.GaugeValue("derived:refund_rate", Labels{"a", "", ""}), 0.25);
  EXPECT_DOUBLE_EQ(
      reg.GaugeValue("derived:refund_rate", Labels{"b", "", ""}), 0.0);

  // A quiet epoch (no new awards) is rate 0, not NaN.
  reg.AddCounter("refunds", Labels{"a", "", ""}, 1.0);
  engine.EvaluateEpoch(reg);
  EXPECT_DOUBLE_EQ(
      reg.GaugeValue("derived:refund_rate", Labels{"a", "", ""}), 0.0);
}

TEST(RuleEngineTest, SpreadGroupsByKindAcrossShards) {
  MetricsRegistry reg;
  RuleEngine engine({{RecordingRule::Kind::kSpreadByKind, "spread",
                      "price", ""}});
  reg.SetGauge("price", Labels{"a", "cpu", ""}, 2.0);
  reg.SetGauge("price", Labels{"b", "cpu", ""}, 6.0);
  reg.SetGauge("price", Labels{"a", "ram", ""}, 1.0);  // Single shard.
  engine.EvaluateEpoch(reg);
  EXPECT_DOUBLE_EQ(
      reg.GaugeValue("derived:spread", Labels{"", "cpu", ""}), 2.0);
  EXPECT_DOUBLE_EQ(
      reg.GaugeValue("derived:spread", Labels{"", "ram", ""}), 0.0);
}

TEST(RuleEngineTest, DerivedSeriesRideTheExports) {
  MetricsRegistry reg;
  RuleEngine engine({{RecordingRule::Kind::kCounterRate, "rate", "n", ""}});
  reg.AddCounter("n", Labels{}, 4.0);
  engine.EvaluateEpoch(reg);
  reg.SnapshotEpoch(0);
  EXPECT_NE(reg.ToJson().find("derived:rate"), std::string::npos);
  // ':' is legal in Prometheus metric names (the recording-rule
  // convention); the exposition carries the derived gauge too.
  EXPECT_NE(reg.ToPrometheusText().find("# TYPE derived:rate gauge"),
            std::string::npos);
  ASSERT_EQ(reg.Snapshots().size(), 1u);
  bool in_snapshot = false;
  for (const auto& [key, value] : reg.Snapshots()[0].gauges) {
    in_snapshot = in_snapshot || key == "derived:rate";
  }
  EXPECT_TRUE(in_snapshot);
}

// -------------------------------------------------------- alert engine --

AlertRule ThresholdRule(const std::string& name, const std::string& metric,
                        double threshold, int for_epochs) {
  AlertRule rule;
  rule.name = name;
  rule.kind = AlertRule::Kind::kAbove;
  rule.metric = metric;
  rule.threshold = threshold;
  rule.for_epochs = for_epochs;
  rule.severity = AlertSeverity::kCritical;
  return rule;
}

TEST(AlertEngineTest, ImmediateRuleWalksFullLifecycle) {
  MetricsRegistry reg;
  AlertEngine engine({ThresholdRule("hot", "temp", 10.0, 1)});

  reg.SetGauge("temp", Labels{}, 5.0);
  EXPECT_TRUE(engine.EvaluateEpoch(reg, 0).empty());  // inactive

  reg.SetGauge("temp", Labels{}, 25.0);
  auto t = engine.EvaluateEpoch(reg, 1);  // inactive -> firing
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].from, AlertState::kInactive);
  EXPECT_EQ(t[0].to, AlertState::kFiring);
  EXPECT_EQ(t[0].epoch, 1);
  EXPECT_DOUBLE_EQ(t[0].value, 25.0);
  EXPECT_EQ(engine.FiringNames(), std::vector<std::string>{"hot"});

  reg.SetGauge("temp", Labels{}, 25.0);
  EXPECT_TRUE(engine.EvaluateEpoch(reg, 2).empty());  // still firing

  reg.SetGauge("temp", Labels{}, 5.0);
  t = engine.EvaluateEpoch(reg, 3);  // firing -> resolved
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].to, AlertState::kResolved);
  EXPECT_TRUE(engine.FiringNames().empty());

  t = engine.EvaluateEpoch(reg, 4);  // resolved -> inactive
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].to, AlertState::kInactive);
  EXPECT_TRUE(engine.EverFired("hot"));
  EXPECT_FALSE(engine.EverFired("cold"));
}

TEST(AlertEngineTest, HysteresisHoldsThroughPending) {
  MetricsRegistry reg;
  AlertEngine engine({ThresholdRule("hot", "temp", 10.0, 3)});

  // Two breach epochs, then a clear: pending never becomes firing.
  reg.SetGauge("temp", Labels{}, 20.0);
  auto t = engine.EvaluateEpoch(reg, 0);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].to, AlertState::kPending);
  engine.EvaluateEpoch(reg, 1);
  reg.SetGauge("temp", Labels{}, 0.0);
  t = engine.EvaluateEpoch(reg, 2);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].to, AlertState::kInactive);
  EXPECT_FALSE(engine.EverFired("hot"));

  // Three consecutive breaches: the streak restarts and fires.
  reg.SetGauge("temp", Labels{}, 20.0);
  engine.EvaluateEpoch(reg, 3);
  engine.EvaluateEpoch(reg, 4);
  t = engine.EvaluateEpoch(reg, 5);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].from, AlertState::kPending);
  EXPECT_EQ(t[0].to, AlertState::kFiring);
  EXPECT_TRUE(engine.EverFired("hot"));
}

TEST(AlertEngineTest, AbsenceRuleFiresUntilSeriesAppears) {
  MetricsRegistry reg;
  AlertRule rule;
  rule.name = "shard-silent";
  rule.kind = AlertRule::Kind::kAbsent;
  rule.metric = "heartbeat";
  rule.labels = Labels{"a", "", ""};
  AlertEngine engine({rule});

  auto t = engine.EvaluateEpoch(reg, 0);  // Missing from epoch 0.
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].to, AlertState::kFiring);
  EXPECT_EQ(t[0].series, "heartbeat{shard=\"a\"}");

  reg.AddCounter("heartbeat", Labels{"a", "", ""}, 1.0);
  t = engine.EvaluateEpoch(reg, 1);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].to, AlertState::kResolved);
}

TEST(AlertEngineTest, BelowRuleAndPerLabelInstances) {
  MetricsRegistry reg;
  AlertRule rule;
  rule.name = "starved";
  rule.kind = AlertRule::Kind::kBelow;
  rule.metric = "winners";
  rule.threshold = 2.0;
  AlertEngine engine({rule});

  // Two shards, one starved: exactly one instance fires.
  reg.SetGauge("winners", Labels{"a", "", ""}, 0.0);
  reg.SetGauge("winners", Labels{"b", "", ""}, 9.0);
  const auto t = engine.EvaluateEpoch(reg, 0);
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].series, "winners{shard=\"a\"}");
  EXPECT_EQ(t[0].to, AlertState::kFiring);
}

TEST(AlertEngineTest, TimelineJsonIsDeterministic) {
  const auto run = [] {
    MetricsRegistry reg;
    AlertEngine engine({ThresholdRule("hot", "temp", 1.0, 1)});
    reg.SetGauge("temp", Labels{}, 2.0);
    engine.EvaluateEpoch(reg, 0);
    reg.SetGauge("temp", Labels{}, 0.0);
    engine.EvaluateEpoch(reg, 1);
    return engine.TimelineJson();
  };
  const std::string once = run();
  EXPECT_EQ(once, run());
  EXPECT_NE(once.find("\"alert\": \"hot\""), std::string::npos);
  EXPECT_NE(once.find("\"severity\": \"critical\""), std::string::npos);
}

// --------------------------------------------------- federation wiring --

agents::WorkloadConfig SmallWorkload() {
  agents::WorkloadConfig config;
  config.num_clusters = 4;
  config.num_teams = 12;
  config.min_machines_per_cluster = 10;
  config.max_machines_per_cluster = 20;
  return config;
}

std::vector<federation::ShardSpec> TwoShards() {
  std::vector<federation::ShardSpec> specs;
  for (const char* name : {"alpha", "beta"}) {
    federation::ShardSpec spec;
    spec.name = name;
    spec.workload = SmallWorkload();
    spec.market.auction.alpha = 0.4;
    spec.market.auction.delta = 0.08;
    spec.market.auction.max_rounds = 30000;
    specs.push_back(std::move(spec));
  }
  return specs;
}

federation::FederationConfig WatchdogConfigOn() {
  federation::FederationConfig config;
  config.supervisor.enabled = true;
  config.supervisor.quarantine_streak = 1;
  config.telemetry.enabled = true;
  config.telemetry.watchdog.recording_rules = true;
  config.telemetry.watchdog.alerts = true;
  return config;
}

TEST(WatchdogWiringTest, ContainmentAlertReachesReportAndRings) {
  federation::FederatedExchange fed(TwoShards(), WatchdogConfigOn());
  fed.EndowFederatedTeam("globex", Money::FromDollars(100000));
  fed.InjectShardFailure(0);
  const federation::FederationReport report = fed.RunEpoch();

  ASSERT_TRUE(report.alerts.enabled);
  ASSERT_FALSE(report.alerts.firing.empty());
  EXPECT_EQ(report.alerts.firing[0], "containment");
  EXPECT_GT(report.alerts.transitions, 0u);
  EXPECT_NE(RenderFederationSummary(report).find("firing: containment"),
            std::string::npos);

  // The planet-scope transition was mirrored into EVERY shard's ring.
  const Telemetry* telemetry = fed.telemetry();
  ASSERT_NE(telemetry, nullptr);
  for (std::size_t k = 0; k < 2; ++k) {
    bool mirrored = false;
    for (const FlightEvent& event : telemetry->recorder().Ring(k)) {
      mirrored = mirrored ||
                 event.line.find("alert containment") != std::string::npos;
    }
    EXPECT_TRUE(mirrored) << "ring " << k;
  }
}

TEST(WatchdogWiringTest, WatchdogOffEmitsNoDerivedOrWatchdogSeries) {
  federation::FederationConfig config = WatchdogConfigOn();
  config.telemetry.watchdog = WatchdogConfig{};  // Both gates off.
  federation::FederatedExchange fed(TwoShards(), config);
  fed.EndowFederatedTeam("globex", Money::FromDollars(100000));
  fed.RunEpoch();
  const std::string json = fed.telemetry()->MetricsJson();
  EXPECT_EQ(json.find("derived:"), std::string::npos);
  EXPECT_EQ(json.find("fed_shard_health"), std::string::npos);
  EXPECT_EQ(json.find("fed_awarded_dollars"), std::string::npos);
  EXPECT_EQ(json.find("fed_clearing_price_dollars"), std::string::npos);
  EXPECT_EQ(json.find("fed_health_transitions"), std::string::npos);
  EXPECT_EQ(json.find("fed_treasury_conservation_residual_dollars"),
            std::string::npos);
  EXPECT_EQ(fed.telemetry()->AlertTimelineJson(),
            "{\n\"alerts\": [\n]\n}\n");
}

TEST(WatchdogWiringTest, WatchdogDoesNotPerturbScenarioOutcomes) {
  // The watchdog only reads the registry and writes derived series back;
  // market outcomes must be bit-identical with it off.
  const auto run = [](bool watchdog) {
    scenario::ScenarioSpec spec =
        scenario::FindScenario("outage-during-price-war");
    spec.slo.expect_alerts.clear();  // The off arm has no engine to read.
    spec.slo.forbid_alerts.clear();
    spec.federation.telemetry.watchdog.recording_rules = watchdog;
    spec.federation.telemetry.watchdog.alerts = watchdog;
    scenario::ScenarioRunner runner(std::move(spec),
                                    scenario::RunnerConfig{});
    return runner.Run().ToJson();
  };
  EXPECT_EQ(run(false), run(true));
}

// ------------------------------------------------------ SLO assertions --

TEST(AlertSloTest, MissingExpectedAlertFailsTheScenario) {
  scenario::ScenarioSpec spec =
      scenario::FindScenario("outage-during-price-war");
  // refund-storm never fires here (refunds are a sliver of awards).
  spec.slo.expect_alerts = {"refund-storm"};
  spec.slo.forbid_alerts.clear();
  scenario::ScenarioRunner runner(std::move(spec),
                                  scenario::RunnerConfig{});
  const scenario::ScenarioMetrics metrics = runner.Run();
  ASSERT_TRUE(metrics.slos_evaluated);
  EXPECT_FALSE(metrics.slo_pass);
  bool saw = false;
  for (const scenario::SloResult& slo : metrics.slos) {
    if (slo.name == "alert-fired:refund-storm") {
      saw = true;
      EXPECT_FALSE(slo.pass);
    }
  }
  EXPECT_TRUE(saw);
}

TEST(AlertSloTest, SpuriousForbiddenAlertFailsTheScenario) {
  scenario::ScenarioSpec spec =
      scenario::FindScenario("outage-during-price-war");
  spec.slo.expect_alerts.clear();
  spec.slo.forbid_alerts = {"containment"};  // It WILL fire.
  scenario::ScenarioRunner runner(std::move(spec),
                                  scenario::RunnerConfig{});
  const scenario::ScenarioMetrics metrics = runner.Run();
  ASSERT_TRUE(metrics.slos_evaluated);
  EXPECT_FALSE(metrics.slo_pass);
  bool saw = false;
  for (const scenario::SloResult& slo : metrics.slos) {
    if (slo.name == "alert-silent:containment") {
      saw = true;
      EXPECT_FALSE(slo.pass);
    }
  }
  EXPECT_TRUE(saw);
}

TEST(AlertSloTest, AssertingWithoutTheEngineFailsLoudly) {
  scenario::ScenarioSpec spec =
      scenario::FindScenario("outage-during-price-war");
  spec.federation.telemetry.watchdog.alerts = false;  // Spec bug.
  scenario::ScenarioRunner runner(std::move(spec),
                                  scenario::RunnerConfig{});
  const scenario::ScenarioMetrics metrics = runner.Run();
  ASSERT_TRUE(metrics.slos_evaluated);
  EXPECT_FALSE(metrics.slo_pass);
  bool saw = false;
  for (const scenario::SloResult& slo : metrics.slos) {
    saw = saw || (slo.name == "alert-engine-armed" && !slo.pass);
  }
  EXPECT_TRUE(saw);
}

// ------------------------------------------------------ golden contract --

std::string ReadGolden(const std::string& name) {
  const std::string path =
      std::string(PM_REPO_ROOT) + "/tests/golden/" + name;
  std::ifstream file(path);
  PM_CHECK_MSG(file.good(), "missing golden file " << path);
  std::ostringstream os;
  os << file.rdbuf();
  return os.str();
}

TEST(WatchdogGoldenTest, OutageScenarioDocumentsAreByteStable) {
  // The exact artifacts the weekly CI run uploads, enforced on every
  // push: default seed, default epochs, any thread count.
  scenario::ScenarioRunner runner(
      scenario::FindScenario("outage-during-price-war"),
      scenario::RunnerConfig{});
  const scenario::ScenarioMetrics metrics = runner.Run();
  EXPECT_TRUE(metrics.slo_pass);
  const Telemetry* telemetry = runner.exchange().telemetry();
  ASSERT_NE(telemetry, nullptr);
  EXPECT_EQ(telemetry->MetricsJson(),
            ReadGolden("outage-during-price-war.metrics.json"));
  EXPECT_EQ(telemetry->AlertTimelineJson(),
            ReadGolden("outage-during-price-war.alerts.json"));
}

// ------------------------------------------------------ flight recorder --

TEST(FlightRecorderDropTest, CountsRingOverwritesPerShard) {
  FlightRecorder recorder(/*num_shards=*/2, /*capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    recorder.Record(0, FlightEvent{0, 0, 0, "e" + std::to_string(i)});
  }
  recorder.Record(1, FlightEvent{0, 0, 0, "only"});
  EXPECT_EQ(recorder.Dropped(0), 3u);
  EXPECT_EQ(recorder.Dropped(1), 0u);

  const FlightDump& dump =
      recorder.DumpShard(0, "alpha", 0, "boom", "healthy -> degraded", {});
  EXPECT_EQ(dump.dropped_events, 3u);
  EXPECT_NE(dump.text.find("3 older events dropped"), std::string::npos);
  EXPECT_NE(recorder.DumpsJson().find("\"dropped_events\": 3"),
            std::string::npos);
}

// ------------------------------------------------------------- console --

TEST(ConsoleTest, RendersHealthAlertsAndPricesDeterministically) {
  const auto run = [](std::size_t threads) {
    scenario::RunnerConfig config;
    config.num_threads = threads;
    scenario::ScenarioRunner runner(
        scenario::FindScenario("outage-during-price-war"), config);
    runner.Run();
    return RenderConsole(*runner.exchange().telemetry());
  };
  const std::string console = run(0);
  EXPECT_EQ(console, run(4));
  EXPECT_NE(console.find("alerts: containment"), std::string::npos);
  EXPECT_NE(console.find("alerts: quarantine"), std::string::npos);
  EXPECT_NE(console.find("health=quarantined"), std::string::npos);
  EXPECT_NE(console.find("health=healthy"), std::string::npos);
  EXPECT_NE(console.find("prices: cpu="), std::string::npos);
  EXPECT_NE(console.find("spread: mean="), std::string::npos);
}

}  // namespace
}  // namespace pm::telemetry
