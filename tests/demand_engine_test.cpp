// Tests for pm::auction::DemandEngine: randomized equivalence against the
// BidderProxy oracle (decisions and excess bit-for-bit on the full path),
// incremental-re-evaluation consistency, sharded-engine consistency (the
// distributed proxy-node path), thread-count determinism, and the
// deterministic tie-breaking contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "auction/clock_auction.h"
#include "auction/demand_engine.h"
#include "auction/proxy.h"
#include "bid/bid.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/types.h"

namespace pm::auction {
namespace {

using bid::Bid;
using bid::Bundle;
using bid::BundleItem;

/// One randomized market: bids (buyers and sellers, scalar and vector π,
/// occasional duplicate bundles to exercise ties), supply, reserve prices.
struct Market {
  std::vector<Bid> bids;
  std::vector<double> supply;
  std::vector<double> reserve;
};

Market MakeMarket(std::uint64_t seed) {
  RandomStream rng(seed);
  Market m;
  const int num_pools = static_cast<int>(rng.UniformInt(1, 12));
  const int num_users = static_cast<int>(rng.UniformInt(1, 30));
  m.supply.resize(num_pools);
  m.reserve.resize(num_pools);
  for (int r = 0; r < num_pools; ++r) {
    m.supply[r] = rng.Uniform(1.0, 50.0);
    m.reserve[r] = rng.Uniform(0.0, 4.0);
  }
  for (int u = 0; u < num_users; ++u) {
    Bid b;
    b.user = static_cast<UserId>(u);
    b.name = "u" + std::to_string(u);
    const bool seller = rng.Bernoulli(0.25);
    const double sign = seller ? -1.0 : 1.0;
    const int num_bundles = static_cast<int>(rng.UniformInt(1, 4));
    for (int k = 0; k < num_bundles; ++k) {
      if (k > 0 && rng.Bernoulli(0.2)) {
        // Duplicate an earlier bundle: an exact cost tie at every price
        // vector, pinning the tie-break contract.
        b.bundles.push_back(
            b.bundles[static_cast<std::size_t>(rng.UniformInt(0, k - 1))]);
        continue;
      }
      std::vector<BundleItem> items;
      const int nnz = static_cast<int>(
          rng.UniformInt(1, std::min(3, num_pools)));
      for (int j = 0; j < nnz; ++j) {
        items.push_back(BundleItem{
            static_cast<PoolId>(rng.UniformInt(0, num_pools - 1)),
            sign * rng.Uniform(0.5, 6.0)});
      }
      Bundle bundle(std::move(items));
      if (bundle.Empty()) {
        // Duplicate pools can cancel; fall back to a single-item bundle.
        bundle = Bundle({BundleItem{
            static_cast<PoolId>(rng.UniformInt(0, num_pools - 1)),
            sign * rng.Uniform(0.5, 6.0)}});
      }
      b.bundles.push_back(std::move(bundle));
    }
    if (rng.Bernoulli(0.4)) {
      for (std::size_t k = 0; k < b.bundles.size(); ++k) {
        b.bundle_limits.push_back(sign * rng.Uniform(1.0, 60.0));
      }
    } else {
      b.limit = sign * rng.Uniform(1.0, 60.0);
    }
    m.bids.push_back(std::move(b));
  }
  bid::AssignUserIds(m.bids);
  return m;
}

std::vector<double> RandomPrices(RandomStream& rng, std::size_t num_pools,
                                 double hi) {
  std::vector<double> p(num_pools);
  for (double& v : p) v = rng.Uniform(0.0, hi);
  return p;
}

std::vector<ProxyDecision> OracleDecisions(
    const std::vector<Bid>& bids, std::span<const double> prices) {
  std::vector<ProxyDecision> out;
  out.reserve(bids.size());
  for (const Bid& b : bids) {
    out.push_back(BidderProxy(&b).Evaluate(prices));
  }
  return out;
}

/// The oracle excess: user-order serial accumulation, exactly the
/// pre-engine ClockAuction::CollectDemand arithmetic.
std::vector<double> OracleExcess(const std::vector<Bid>& bids,
                                 const std::vector<ProxyDecision>& decisions,
                                 const std::vector<double>& supply) {
  std::vector<double> excess(supply.size(), 0.0);
  for (std::size_t u = 0; u < bids.size(); ++u) {
    if (!decisions[u].Active()) continue;
    bid::AccumulateInto(
        bids[u].bundles[static_cast<std::size_t>(
            decisions[u].bundle_index)],
        excess);
  }
  for (std::size_t r = 0; r < supply.size(); ++r) excess[r] -= supply[r];
  return excess;
}

// ------------------------------------------------- full-path equivalence --

TEST(DemandEngineTest, FullCollectionMatchesOracleBitForBitOver1kMarkets) {
  // ≥1k seeded markets (buyers and sellers, scalar and vector π): the
  // engine's full evaluation must equal the per-proxy oracle bit-for-bit
  // — decision indexes, decision costs, and excess. Markets here are
  // smaller than one excess block, so the engine's blocked accumulation
  // degenerates to exactly the oracle's user-order serial sum.
  for (std::uint64_t seed = 0; seed < 1000; ++seed) {
    const Market m = MakeMarket(seed);
    RandomStream rng(seed ^ 0x9e3779b97f4a7c15ULL);
    const DemandEngine engine(m.bids, m.supply);
    DemandEngine::Workspace ws;
    for (int probe = 0; probe < 3; ++probe) {
      const std::vector<double> prices =
          probe == 0 ? m.reserve : RandomPrices(rng, m.supply.size(), 12.0);
      ws.Reset();  // Force a full collection at every probe.
      engine.CollectDemand(prices, nullptr, ws);
      const std::vector<ProxyDecision> oracle =
          OracleDecisions(m.bids, prices);
      ASSERT_EQ(ws.decisions().size(), oracle.size());
      for (std::size_t u = 0; u < oracle.size(); ++u) {
        ASSERT_EQ(ws.decisions()[u].bundle_index, oracle[u].bundle_index)
            << "seed " << seed << " user " << u;
        ASSERT_EQ(ws.decisions()[u].cost, oracle[u].cost)
            << "seed " << seed << " user " << u;
      }
      const std::vector<double> expected =
          OracleExcess(m.bids, oracle, m.supply);
      for (std::size_t r = 0; r < expected.size(); ++r) {
        ASSERT_EQ(ws.excess()[r], expected[r])
            << "seed " << seed << " pool " << r;
      }
    }
  }
}

// ------------------------------------------------ incremental consistency --

TEST(DemandEngineTest, IncrementalWalkMatchesFreshEvaluation) {
  // Random ascending price walks moving random pool subsets: the
  // incremental path must reproduce a from-scratch evaluation's decisions
  // exactly (cached-cost drift is orders of magnitude below the kPriceEps
  // comparison tolerance) and its excess to within accumulated rounding.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    const Market m = MakeMarket(seed + 5000);
    RandomStream rng(seed ^ 0xabcdef12345ULL);
    const DemandEngine engine(m.bids, m.supply);
    DemandEngine::Workspace incremental;
    DemandEngine::Workspace fresh;
    std::vector<double> prices = m.reserve;
    for (int stepno = 0; stepno < 20; ++stepno) {
      engine.CollectDemand(prices, nullptr, incremental);
      fresh.Reset();
      engine.CollectDemand(prices, nullptr, fresh);
      for (std::size_t u = 0; u < m.bids.size(); ++u) {
        ASSERT_EQ(incremental.decisions()[u].bundle_index,
                  fresh.decisions()[u].bundle_index)
            << "seed " << seed << " step " << stepno << " user " << u;
        ASSERT_NEAR(incremental.decisions()[u].cost,
                    fresh.decisions()[u].cost, 1e-9);
      }
      for (std::size_t r = 0; r < m.supply.size(); ++r) {
        ASSERT_NEAR(incremental.excess()[r], fresh.excess()[r], 1e-9)
            << "seed " << seed << " step " << stepno << " pool " << r;
      }
      // Move a random subset of pools (sometimes none, sometimes all).
      for (double& p : prices) {
        if (rng.Bernoulli(0.4)) p += rng.Uniform(0.0, 0.8);
      }
    }
  }
}

TEST(DemandEngineTest, IncrementalReevaluatesOnlyTouchedBidders) {
  // Two disjoint user populations over disjoint pool halves: repricing
  // one half must re-evaluate only its bidders.
  std::vector<Bid> bids;
  for (UserId u = 0; u < 10; ++u) {
    Bid b;
    b.user = u;
    b.name = "u" + std::to_string(u);
    const PoolId pool = u < 5 ? 0 : 1;
    b.bundles.push_back(Bundle({BundleItem{pool, 1.0}}));
    b.limit = 100.0;
    bids.push_back(std::move(b));
  }
  const DemandEngine engine(bids, std::vector<double>{4.0, 4.0});
  DemandEngine::Workspace ws;
  std::vector<double> prices = {1.0, 1.0};
  engine.CollectDemand(prices, nullptr, ws);
  EXPECT_EQ(ws.proxies_evaluated(), 10);  // Full sweep.
  prices[1] = 2.0;  // Touch pool 1 only.
  engine.CollectDemand(prices, nullptr, ws);
  EXPECT_EQ(ws.proxies_evaluated(), 15);  // +5: bidders on pool 1 only.
  engine.CollectDemand(prices, nullptr, ws);
  EXPECT_EQ(ws.proxies_evaluated(), 15);  // Unchanged prices: free.
  EXPECT_EQ(ws.full_collections(), 1);
  EXPECT_EQ(ws.incremental_collections(), 2);
}

// --------------------------------------------------- sharded-engine path --

TEST(DemandEngineTest, ShardedEnginesMatchWholeMarketBitForBit) {
  // The distributed proxy nodes compile per-shard engines and serve
  // announcements incrementally; their decisions (and cached costs) must
  // track the whole-market engine bit-for-bit through a price walk.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const Market m = MakeMarket(seed + 9000);
    RandomStream rng(seed ^ 0x5555aaaaULL);
    const DemandEngine whole(m.bids, m.supply);
    const std::size_t num_shards = 3;
    std::vector<std::vector<std::uint32_t>> shard_users(num_shards);
    for (std::size_t u = 0; u < m.bids.size(); ++u) {
      shard_users[u % num_shards].push_back(static_cast<std::uint32_t>(u));
    }
    std::vector<DemandEngine> shards;
    std::vector<DemandEngine::Workspace> shard_ws(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s) {
      shards.emplace_back(m.bids, shard_users[s],
                          std::vector<double>(m.supply.size(), 0.0));
      shard_ws[s].set_want_excess(false);
    }
    DemandEngine::Workspace whole_ws;
    std::vector<double> prices = m.reserve;
    for (int round = 0; round < 10; ++round) {
      whole.CollectDemand(prices, nullptr, whole_ws);
      for (std::size_t s = 0; s < num_shards; ++s) {
        shards[s].CollectDemand(prices, nullptr, shard_ws[s]);
        for (std::size_t i = 0; i < shard_users[s].size(); ++i) {
          const std::uint32_t u = shard_users[s][i];
          ASSERT_EQ(shard_ws[s].decisions()[i].bundle_index,
                    whole_ws.decisions()[u].bundle_index)
              << "seed " << seed << " round " << round << " user " << u;
          ASSERT_EQ(shard_ws[s].decisions()[i].cost,
                    whole_ws.decisions()[u].cost)
              << "seed " << seed << " round " << round << " user " << u;
        }
      }
      for (double& p : prices) {
        if (rng.Bernoulli(0.5)) p += rng.Uniform(0.0, 0.5);
      }
    }
  }
}

// ------------------------------------------------ thread-count invariance --

TEST(DemandEngineTest, ThreadedCollectionBitIdenticalToSerial) {
  // Excess accumulation is blocked with a fixed block size, so results do
  // not depend on the thread pool — even for markets spanning many
  // blocks.
  RandomStream rng(424242);
  std::vector<Bid> bids;
  const std::size_t num_pools = 16;
  for (UserId u = 0; u < 2000; ++u) {
    Bid b;
    b.user = u;
    b.name = "u" + std::to_string(u);
    const int num_bundles = static_cast<int>(rng.UniformInt(1, 3));
    for (int k = 0; k < num_bundles; ++k) {
      b.bundles.push_back(Bundle(
          {BundleItem{static_cast<PoolId>(rng.UniformInt(0, 15)),
                      rng.Uniform(0.5, 4.0)},
           BundleItem{static_cast<PoolId>(rng.UniformInt(0, 15)),
                      rng.Uniform(0.5, 4.0)}}));
    }
    b.limit = rng.Uniform(5.0, 40.0);
    bids.push_back(std::move(b));
  }
  bid::AssignUserIds(bids);
  const DemandEngine engine(bids, std::vector<double>(num_pools, 100.0));
  ASSERT_GT(engine.NumBidders(), DemandEngine::kExcessBlockBidders);

  ThreadPool pool(4);
  DemandEngine::Workspace serial_ws;
  DemandEngine::Workspace parallel_ws;
  RandomStream price_rng(7);
  std::vector<double> prices(num_pools, 1.0);
  for (int round = 0; round < 5; ++round) {
    engine.CollectDemand(prices, nullptr, serial_ws);
    engine.CollectDemand(prices, &pool, parallel_ws);
    for (std::size_t u = 0; u < bids.size(); ++u) {
      ASSERT_EQ(serial_ws.decisions()[u].bundle_index,
                parallel_ws.decisions()[u].bundle_index);
      ASSERT_EQ(serial_ws.decisions()[u].cost,
                parallel_ws.decisions()[u].cost);
    }
    for (std::size_t r = 0; r < num_pools; ++r) {
      ASSERT_EQ(serial_ws.excess()[r], parallel_ws.excess()[r]);
    }
    for (double& p : prices) {
      if (price_rng.Bernoulli(0.5)) p += price_rng.Uniform(0.0, 0.4);
    }
  }
}

// ----------------------------------------------- excess helper coherence --

TEST(DemandEngineTest, ExcessHelpersMatchCollectDemand) {
  const Market m = MakeMarket(31337);
  const DemandEngine engine(m.bids, m.supply);
  DemandEngine::Workspace ws;
  engine.CollectDemand(m.reserve, nullptr, ws);
  const std::vector<ProxyDecision> before = ws.decisions();

  std::vector<double> excess(m.supply.size(), 0.0);
  engine.ExcessFromDecisions(before, nullptr, excess);
  for (std::size_t r = 0; r < excess.size(); ++r) {
    EXPECT_EQ(excess[r], ws.excess()[r]);
  }

  // Move a single pool so the engine takes the incremental branch (a
  // wide move would trigger the hybrid full-collect fallback, which
  // recomputes excess fresh rather than by diffs).
  std::vector<double> higher = m.reserve;
  higher[0] += 3.0;
  engine.CollectDemand(higher, nullptr, ws);
  engine.UpdateExcess(before, ws.decisions(), excess);
  for (std::size_t r = 0; r < excess.size(); ++r) {
    EXPECT_EQ(excess[r], ws.excess()[r]);  // Same diff sequence: bit-exact.
  }
}

// ------------------------------------------------------------ tie-breaks --

TEST(DemandEngineTest, TieBreakPicksLowestIndexInEngineAndOracle) {
  // Exact duplicates: every price vector produces an exact cost tie; the
  // contract says the lowest index wins, in the oracle and the engine.
  Bid b;
  b.user = 0;
  b.name = "t";
  b.bundles = {Bundle({{0, 2.0}}), Bundle({{0, 2.0}}), Bundle({{0, 2.0}})};
  b.limit = 100.0;
  std::vector<Bid> bids = {b};
  bid::AssignUserIds(bids);
  const DemandEngine engine(bids, std::vector<double>{10.0});
  DemandEngine::Workspace ws;
  for (double price : {0.0, 1.0, 7.5}) {
    const std::vector<double> prices = {price};
    ws.Reset();
    engine.CollectDemand(prices, nullptr, ws);
    const ProxyDecision oracle = BidderProxy(&bids[0]).Evaluate(prices);
    EXPECT_EQ(oracle.bundle_index, 0);
    EXPECT_EQ(ws.decisions()[0].bundle_index, 0);
  }
}

TEST(DemandEngineTest, EpsCloseCostsResolveToLowestIndex) {
  // Bundle 1 is cheaper than bundle 0 by half an epsilon: within the
  // kPriceEps window, so the lower index must still win; 10 eps below, it
  // must lose.
  Bid near_tie;
  near_tie.user = 0;
  near_tie.name = "n";
  near_tie.bundles = {Bundle({{0, 1.0}}),
                      Bundle({{1, 1.0 - 0.5 * kPriceEps}})};
  near_tie.limit = 100.0;
  Bid clear_win;
  clear_win.user = 1;
  clear_win.name = "c";
  clear_win.bundles = {Bundle({{0, 1.0}}),
                       Bundle({{1, 1.0 - 10.0 * kPriceEps}})};
  clear_win.limit = 100.0;
  std::vector<Bid> bids = {near_tie, clear_win};
  bid::AssignUserIds(bids);
  const std::vector<double> prices = {1.0, 1.0};
  const DemandEngine engine(bids, std::vector<double>{5.0, 5.0});
  DemandEngine::Workspace ws;
  engine.CollectDemand(prices, nullptr, ws);
  EXPECT_EQ(BidderProxy(&bids[0]).Evaluate(prices).bundle_index, 0);
  EXPECT_EQ(ws.decisions()[0].bundle_index, 0);
  EXPECT_EQ(BidderProxy(&bids[1]).Evaluate(prices).bundle_index, 1);
  EXPECT_EQ(ws.decisions()[1].bundle_index, 1);
}

TEST(DemandEngineTest, VectorPiTieBreakSkipsUnaffordableDuplicates) {
  // Identical bundles, but bundle 0 is unaffordable under its vector-π
  // entry: the lowest AFFORDABLE index wins.
  Bid b;
  b.user = 0;
  b.name = "v";
  b.bundles = {Bundle({{0, 3.0}}), Bundle({{0, 3.0}}), Bundle({{0, 3.0}})};
  b.bundle_limits = {1.0, 50.0, 50.0};
  std::vector<Bid> bids = {b};
  bid::AssignUserIds(bids);
  const std::vector<double> prices = {2.0};  // Cost 6 > 1, ≤ 50.
  const DemandEngine engine(bids, std::vector<double>{10.0});
  DemandEngine::Workspace ws;
  engine.CollectDemand(prices, nullptr, ws);
  EXPECT_EQ(BidderProxy(&bids[0]).Evaluate(prices).bundle_index, 1);
  EXPECT_EQ(ws.decisions()[0].bundle_index, 1);
}

// -------------------------------------------------- auction-level checks --

TEST(DemandEngineTest, AuctionDecisionsMatchOracleAtFinalPrices) {
  // End-to-end: after a bisected engine-driven auction, the reported
  // decisions must be exactly what the oracle chooses at the final
  // prices (the incremental path may not drift decisions).
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const Market m = MakeMarket(seed + 20000);
    const ClockAuction auction(m.bids, m.supply, m.reserve);
    ClockAuctionConfig config;
    config.alpha = 0.5;
    config.delta = 0.2;
    config.intra_round_bisection = true;
    config.max_rounds = 4000;
    const ClockAuctionResult r = auction.Run(config);
    // Non-converged runs report decisions for the last evaluated prices,
    // which precede the final step — only converged runs pin prices to
    // the last demand collection.
    if (!r.converged) continue;
    const std::vector<ProxyDecision> oracle =
        OracleDecisions(m.bids, r.prices);
    for (std::size_t u = 0; u < m.bids.size(); ++u) {
      ASSERT_EQ(r.decisions[u].bundle_index, oracle[u].bundle_index)
          << "seed " << seed << " user " << u;
    }
    EXPECT_LE(r.proxies_reevaluated, r.demand_evaluations);
  }
}

TEST(DemandEngineTest, BisectionProbesReevaluateOnlySteppedPoolBidders) {
  // Ten single-pool user populations; only pool 0 is scarce. After the
  // first round the clock (and every bisection probe) moves pool 0
  // alone, so the engine re-evaluates only the 10 pool-0 bidders out of
  // 100 — proxies_reevaluated must land far below demand_evaluations,
  // the probe-cost-is-O(touched) claim.
  std::vector<Bid> bids;
  for (UserId u = 0; u < 100; ++u) {
    Bid b;
    b.user = u;
    b.name = "u" + std::to_string(u);
    const PoolId pool = u % 10;  // 10 bidders per pool.
    b.bundles.push_back(Bundle({BundleItem{pool, 1.0}}));
    b.limit = 5.0 + static_cast<double>(u / 10) * 0.5;
    bids.push_back(std::move(b));
  }
  std::vector<double> supply(10, 100.0);  // Pools 1..9 clear instantly.
  supply[0] = 5.0;  // Pool 0: 10 demanded vs 5 supplied.
  const ClockAuction auction(bids, supply, std::vector<double>(10, 1.0));
  ClockAuctionConfig config;
  config.intra_round_bisection = true;
  const ClockAuctionResult r = auction.Run(config);
  ASSERT_TRUE(r.converged);
  ASSERT_GT(r.demand_evaluations, 0);
  // Round 0 evaluates all 100; every later round and probe touches only
  // pool 0's 10 bidders.
  EXPECT_LT(r.proxies_reevaluated, r.demand_evaluations / 5);
}

TEST(DemandEngineTest, WorkspaceRejectsForeignEngine) {
  const Market a = MakeMarket(1);
  const Market b = MakeMarket(2);
  const DemandEngine ea(a.bids, a.supply);
  const DemandEngine eb(b.bids, b.supply);
  DemandEngine::Workspace ws;
  ea.CollectDemand(a.reserve, nullptr, ws);
  EXPECT_THROW(eb.CollectDemand(b.reserve, nullptr, ws), CheckFailure);
}

}  // namespace
}  // namespace pm::auction
