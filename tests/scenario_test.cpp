// Tests for the scenario engine: registry integrity, the bit-for-bit
// determinism contract (same seed → byte-identical metrics JSON, across
// reruns AND thread counts), the shard-outage scenario's refund-path
// guarantees, event validation, and the runner's mutation hooks
// (demand-shock restore, outage recovery, expansion pool growth, cohort
// retirement burning its money).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "common/check.h"
#include "scenario/events.h"
#include "scenario/metrics.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"

namespace pm::scenario {
namespace {

// ------------------------------------------------------------ registry --

TEST(ScenarioRegistryTest, ShipsTheSixStressRegimes) {
  const std::vector<std::string> names = ScenarioNames();
  ASSERT_GE(names.size(), 6u);
  const std::set<std::string> expected = {
      "demand-shock",   "flash-crowd", "shard-outage",
      "price-war",      "capacity-expansion", "churn-wave"};
  for (const std::string& name : expected) {
    EXPECT_EQ(std::count(names.begin(), names.end(), name), 1) << name;
  }
  EXPECT_THROW(FindScenario("no-such-scenario"), pm::CheckFailure);
}

TEST(ScenarioRegistryTest, EverySpecIsWellFormed) {
  for (const ScenarioSpec& spec : ScenarioLibrary()) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_FALSE(spec.description.empty());
    EXPECT_FALSE(spec.shards.empty()) << spec.name;
    EXPECT_FALSE(spec.events.empty()) << spec.name;
    EXPECT_GT(spec.default_epochs, 0) << spec.name;
    for (const ScenarioEvent& event : spec.events) {
      EXPECT_EQ(ValidateEvent(event, spec.shards.size()), "")
          << spec.name << ": " << ToString(event.kind);
      // The timeline must actually play out inside the default run.
      EXPECT_LT(event.epoch, spec.default_epochs) << spec.name;
    }
  }
}

// ------------------------------------------------------- event checks --

TEST(ScenarioEventTest, ValidateRejectsMalformedEvents) {
  ScenarioEvent event;
  event.kind = EventKind::kShardOutage;
  event.magnitude = 0.5;
  EXPECT_EQ(ValidateEvent(event, 2), "");
  event.shard = 5;
  EXPECT_NE(ValidateEvent(event, 2), "");
  event.shard = 0;
  event.epoch = -1;
  EXPECT_NE(ValidateEvent(event, 2), "");
  event.epoch = 0;
  event.duration = 0;
  EXPECT_NE(ValidateEvent(event, 2), "");
  event.duration = 1;
  event.magnitude = 1.5;
  EXPECT_NE(ValidateEvent(event, 2), "");

  ScenarioEvent crowd;
  crowd.kind = EventKind::kFlashCrowd;
  crowd.count = 0;
  crowd.magnitude = 10.0;
  crowd.budget = Money::FromDollars(100);
  EXPECT_NE(ValidateEvent(crowd, 2), "");  // Needs a cohort.
  crowd.count = 3;
  EXPECT_EQ(ValidateEvent(crowd, 2), "");
  crowd.budget = Money();
  EXPECT_NE(ValidateEvent(crowd, 2), "");  // Needs funding.

  EXPECT_EQ(ToString(EventKind::kPriceWar), "price-war");
  EXPECT_EQ(ToString(EventKind::kChurnWave), "churn-wave");
}

TEST(ScenarioRunnerTest, RejectsInvalidTimelines) {
  ScenarioSpec spec = FindScenario("demand-shock");
  spec.events[0].shard = 99;
  EXPECT_THROW(ScenarioRunner(spec, RunnerConfig{}), pm::CheckFailure);
}

// -------------------------------------------------------- determinism --

TEST(ScenarioDeterminismTest, EveryScenarioIsByteIdenticalAcrossReruns) {
  for (const ScenarioSpec& spec : ScenarioLibrary()) {
    RunnerConfig config;
    config.seed = 77;
    const std::string first =
        ScenarioRunner(spec, config).Run().ToJson();
    const std::string second =
        ScenarioRunner(spec, config).Run().ToJson();
    EXPECT_EQ(first, second) << spec.name;
  }
}

TEST(ScenarioDeterminismTest, ThreadCountNeverChangesTheBytes) {
  for (const ScenarioSpec& spec : ScenarioLibrary()) {
    RunnerConfig serial;
    serial.seed = 20090425;
    RunnerConfig threaded = serial;
    threaded.num_threads = 3;
    EXPECT_EQ(ScenarioRunner(spec, serial).Run().ToJson(),
              ScenarioRunner(spec, threaded).Run().ToJson())
        << spec.name;
  }
}

TEST(ScenarioDeterminismTest, SeedActuallySteersTheRun) {
  RunnerConfig a;
  a.seed = 1;
  RunnerConfig b;
  b.seed = 2;
  const ScenarioSpec& spec = FindScenario("flash-crowd");
  EXPECT_NE(ScenarioRunner(spec, a).Run().ToJson(),
            ScenarioRunner(spec, b).Run().ToJson());
}

TEST(ScenarioRunnerTest, EventSeedsAvoidShardStreams) {
  // Event streams must never collide with each other or with the
  // federation's shard-seed expansion of the same root.
  const std::uint64_t root = 20090425;
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < 64; ++i) {
    seen.insert(ScenarioRunner::EventSeed(root, i));
    seen.insert(federation::FederatedExchange::ShardWorkloadSeed(root, i));
    seen.insert(federation::FederatedExchange::ShardMarketSeed(root, i));
  }
  EXPECT_EQ(seen.size(), 3u * 64u);
}

// ------------------------------------------------- outage guarantees --

TEST(ScenarioOutageTest, RefundPathRunsEndToEnd) {
  ScenarioRunner runner(FindScenario("shard-outage"), RunnerConfig{});
  const ScenarioMetrics metrics = runner.Run();

  // The outage must force real failures and real refunds...
  EXPECT_GT(metrics.refund_total, 0.0);
  EXPECT_GT(metrics.refunded_units, 0.0);
  EXPECT_GT(metrics.placement_failures, 0u);
  // ...and every awarded unit is accounted for: placed or refunded.
  for (const EpochSample& sample : metrics.series) {
    EXPECT_NEAR(sample.awarded_units,
                sample.placed_units + sample.refunded_units,
                1e-6 * std::max(1.0, sample.awarded_units))
        << "epoch " << sample.epoch;
  }
  // The SLOs encode exactly these guarantees — they must have been
  // evaluated and passed.
  EXPECT_TRUE(metrics.slos_evaluated);
  EXPECT_TRUE(metrics.slo_pass) << metrics.ToJson();
  // Money stayed conserved through extraction, refunds, and recovery.
  EXPECT_LE(metrics.max_treasury_residual, 1e-6);

  // Recovery happened: shard 0 is back to its full cluster complement.
  EXPECT_EQ(runner.exchange().ShardWorld(0).fleet.NumClusters(), 5u);
}

// ------------------------------------------------------ runner hooks --

TEST(ScenarioRunnerTest, DemandShockRestoresGrowthRates) {
  // Run past the shock window, then compare against an untouched twin:
  // every profile's growth rate must be back to its generated value.
  const ScenarioSpec& spec = FindScenario("demand-shock");
  RunnerConfig config;
  ScenarioRunner runner(spec, config);
  runner.Run();

  ScenarioSpec no_events = spec;
  no_events.events.clear();
  ScenarioRunner twin(no_events, config);
  const agents::World& shocked = runner.exchange().ShardWorld(0);
  const agents::World& reference = twin.exchange().ShardWorld(0);
  ASSERT_EQ(shocked.agents.size(), reference.agents.size());
  for (std::size_t a = 0; a < shocked.agents.size(); ++a) {
    EXPECT_DOUBLE_EQ(shocked.agents[a].profile().growth_rate,
                     reference.agents[a].profile().growth_rate);
  }
}

TEST(ScenarioRunnerTest, OverlappingDemandShocksUnwindCleanly) {
  // Two shocks whose windows interleave on the same teams: multipliers
  // must compose while overlapped and the LAST window to close must
  // restore the generated rates exactly — an expired shock may never
  // strand its multiplier (the compound-timeline ROADMAP item leans on
  // this).
  ScenarioSpec spec = FindScenario("demand-shock");
  spec.events.clear();
  spec.events.push_back(ScenarioEvent{EventKind::kDemandShock,
                                      /*epoch=*/1, /*duration=*/3,
                                      /*shard=*/0, /*magnitude=*/4.0,
                                      /*count=*/0, Money()});
  spec.events.push_back(ScenarioEvent{EventKind::kDemandShock,
                                      /*epoch=*/2, /*duration=*/4,
                                      /*shard=*/0, /*magnitude=*/3.0,
                                      /*count=*/0, Money()});
  RunnerConfig config;
  ScenarioRunner runner(spec, config);
  runner.Run();  // default_epochs = 8 > both window ends (4 and 6).

  ScenarioSpec no_events = spec;
  no_events.events.clear();
  ScenarioRunner twin(no_events, config);
  const agents::World& shocked = runner.exchange().ShardWorld(0);
  const agents::World& reference = twin.exchange().ShardWorld(0);
  ASSERT_EQ(shocked.agents.size(), reference.agents.size());
  for (std::size_t a = 0; a < shocked.agents.size(); ++a) {
    EXPECT_DOUBLE_EQ(shocked.agents[a].profile().growth_rate,
                     reference.agents[a].profile().growth_rate);
  }
}

TEST(ScenarioRunnerTest, CapacityExpansionGrowsPoolSpaceAppendOnly) {
  ScenarioRunner runner(FindScenario("capacity-expansion"),
                        RunnerConfig{});
  const ScenarioMetrics metrics = runner.Run();
  ASSERT_FALSE(metrics.series.empty());
  // Two expansions × 3 kinds = 6 new pools on top of the start state,
  // and the growth is monotone (pool ids are append-only).
  EXPECT_EQ(metrics.series.back().total_pools,
            metrics.series.front().total_pools + 6);
  for (std::size_t e = 1; e < metrics.series.size(); ++e) {
    EXPECT_GE(metrics.series[e].total_pools,
              metrics.series[e - 1].total_pools);
  }
  EXPECT_TRUE(metrics.slo_pass);
  EXPECT_GT(metrics.move_billing_total, 0.0);  // Billed moves satellite.
}

TEST(ScenarioRunnerTest, RetiredCohortsLeaveNoMoneyBehind) {
  ScenarioRunner runner(FindScenario("flash-crowd"), RunnerConfig{});
  runner.Run();
  const federation::FederationTreasury* treasury =
      runner.exchange().treasury();
  ASSERT_NE(treasury, nullptr);
  std::size_t crowd_teams = 0;
  for (const std::string& team : treasury->Teams()) {
    if (team.rfind("flash-", 0) == 0) {
      ++crowd_teams;
      EXPECT_TRUE(treasury->PlanetBalance(team).IsZero()) << team;
    }
  }
  EXPECT_EQ(crowd_teams, 10u);  // The cohort actually existed.
  // Their exits are explicit burns, so supply still balances.
  EXPECT_EQ(treasury->CirculatingSupply(),
            treasury->TotalMinted() - treasury->TotalBurned());
  EXPECT_GT(treasury->TotalBurned(), Money());
}

TEST(ScenarioRunnerTest, ShortRunsSkipSloEvaluation) {
  RunnerConfig one_epoch;
  one_epoch.epochs = 1;
  const ScenarioMetrics metrics =
      ScenarioRunner(FindScenario("shard-outage"), one_epoch).Run();
  EXPECT_EQ(metrics.epochs, 1);
  EXPECT_FALSE(metrics.slos_evaluated);
  EXPECT_TRUE(metrics.slo_pass);
  EXPECT_TRUE(metrics.slos.empty());
}

TEST(ScenarioRunnerTest, RunIsOneShot) {
  ScenarioRunner runner(FindScenario("demand-shock"), RunnerConfig{});
  runner.Run();
  EXPECT_THROW(runner.Run(), pm::CheckFailure);
}

// ------------------------------------------------------------ metrics --

TEST(ScenarioMetricsTest, JsonIsWellFormedAndSelfConsistent) {
  ScenarioRunner runner(FindScenario("churn-wave"), RunnerConfig{});
  const ScenarioMetrics metrics = runner.Run();
  const std::string json = metrics.ToJson();
  // Structural spot checks (a full parser lives in the bench tooling).
  EXPECT_NE(json.find("\"scenario\": \"churn-wave\""), std::string::npos);
  EXPECT_NE(json.find("\"series\": ["), std::string::npos);
  EXPECT_NE(json.find("\"slo\": {"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  // The churn wave actually churned, and the series is epoch-aligned.
  ASSERT_EQ(metrics.series.size(),
            static_cast<std::size_t>(metrics.epochs));
  for (int e = 0; e < metrics.epochs; ++e) {
    EXPECT_EQ(metrics.series[static_cast<std::size_t>(e)].epoch, e);
  }
  EXPECT_GT(metrics.series.back().churn_started, 0);
}

}  // namespace
}  // namespace pm::scenario
