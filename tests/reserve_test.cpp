// Tests for pm::reserve: the §IV weighting functions (Figure 2 curves,
// properties 1–5) and the congestion-weighted reserve pricer (Eq. 4).
#include <gtest/gtest.h>

#include <cmath>

#include "cluster/fleet.h"
#include "common/check.h"
#include "reserve/reserve_pricer.h"
#include "reserve/weighting.h"

namespace pm::reserve {
namespace {

TEST(WeightingTest, Phi1MatchesFormula) {
  auto phi = MakeExp2Weighting();
  EXPECT_NEAR((*phi)(0.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR((*phi)(0.5), 1.0, 1e-12);
  EXPECT_NEAR((*phi)(1.0), std::exp(1.0), 1e-12);
  EXPECT_EQ(phi->Name(), "exp2");
}

TEST(WeightingTest, Phi2MatchesFormula) {
  auto phi = MakeExpWeighting();
  EXPECT_NEAR((*phi)(0.0), std::exp(-0.5), 1e-12);
  EXPECT_NEAR((*phi)(0.5), 1.0, 1e-12);
  EXPECT_NEAR((*phi)(1.0), std::exp(0.5), 1e-12);
}

TEST(WeightingTest, Phi3MatchesFormula) {
  auto phi = MakeReciprocalWeighting();
  EXPECT_NEAR((*phi)(0.0), 1.0 / 1.5, 1e-12);
  EXPECT_NEAR((*phi)(0.5), 1.0, 1e-12);
  EXPECT_NEAR((*phi)(1.0), 2.0, 1e-12);
}

TEST(WeightingTest, DynamicRangeK) {
  // Property 5: φ(100%) = k·φ(0%).
  EXPECT_NEAR(MakeExp2Weighting()->DynamicRange(), std::exp(2.0), 1e-12);
  EXPECT_NEAR(MakeExpWeighting()->DynamicRange(), std::exp(1.0), 1e-12);
  EXPECT_NEAR(MakeReciprocalWeighting()->DynamicRange(), 3.0, 1e-12);
}

TEST(WeightingTest, PaperCurvesSatisfyAllProperties) {
  EXPECT_EQ(CheckWeightingProperties(*MakeExp2Weighting()), "");
  EXPECT_EQ(CheckWeightingProperties(*MakeExpWeighting()), "");
  EXPECT_EQ(CheckWeightingProperties(*MakeReciprocalWeighting()), "");
}

TEST(WeightingTest, SteepnessOrderingOfPaperCurves) {
  // Figure 2: φ1 is the steepest at the congested end.
  auto phi1 = MakeExp2Weighting();
  auto phi2 = MakeExpWeighting();
  EXPECT_GT((*phi1)(0.99), (*phi2)(0.99));
  EXPECT_LT((*phi1)(0.01), (*phi2)(0.01));
}

TEST(WeightingTest, FlatFailsSignalingProperties) {
  // The ablation control must *fail* property 2 (no premium on congested
  // pools).
  const std::string failure =
      CheckWeightingProperties(*MakeFlatWeighting());
  EXPECT_NE(failure.find("property 2"), std::string::npos);
}

TEST(WeightingTest, DecreasingCurveFailsProperty1) {
  auto bad = MakeCustomWeighting([](double x) { return 2.0 - x; },
                                 "decreasing");
  EXPECT_NE(CheckWeightingProperties(*bad).find("property 1"),
            std::string::npos);
}

TEST(WeightingTest, ConcaveCurveFailsProperty4) {
  // Satisfies properties 1–3 (monotone, crosses 1 at the threshold) but
  // rises sqrt-fast just above it and flattens toward 100 % — the
  // opposite of the congestion emphasis property 4 demands.
  auto bad = MakeCustomWeighting(
      [](double x) {
        return x <= 0.5 ? 2.0 * x : 1.0 + std::sqrt(x - 0.5);
      },
      "concave-top");
  const std::string failure = CheckWeightingProperties(*bad);
  EXPECT_NE(failure.find("property 4"), std::string::npos) << failure;
}

TEST(WeightingTest, ExcessiveDynamicRangeFailsProperty5) {
  auto bad = MakeCustomWeighting(
      [](double x) { return std::exp(10.0 * (x - 0.5)); }, "wild");
  const std::string failure =
      CheckWeightingProperties(*bad, 0.5, /*max_dynamic_range=*/64.0);
  EXPECT_NE(failure.find("property 5"), std::string::npos);
}

TEST(WeightingTest, PiecewiseLinearInterpolates) {
  auto pw = MakePiecewiseLinearWeighting(
      {{0.0, 0.5}, {0.5, 1.0}, {1.0, 2.5}}, "pw");
  EXPECT_NEAR((*pw)(0.25), 0.75, 1e-12);
  EXPECT_NEAR((*pw)(0.75), 1.75, 1e-12);
  EXPECT_NEAR((*pw)(0.0), 0.5, 1e-12);
  EXPECT_NEAR((*pw)(1.0), 2.5, 1e-12);
  EXPECT_EQ(CheckWeightingProperties(*pw), "");
}

TEST(WeightingTest, PiecewiseValidation) {
  EXPECT_THROW(MakePiecewiseLinearWeighting({{0.0, 1.0}}, "x"),
               pm::CheckFailure);
  EXPECT_THROW(
      MakePiecewiseLinearWeighting({{0.1, 1.0}, {1.0, 2.0}}, "x"),
      pm::CheckFailure);
  EXPECT_THROW(MakePiecewiseLinearWeighting(
                   {{0.0, 1.0}, {0.5, 1.0}, {0.5, 2.0}, {1.0, 2.0}}, "x"),
               pm::CheckFailure);
}

// ------------------------------------------------------------------ pricer --

cluster::Fleet TwoClusterFleet() {
  std::vector<cluster::Cluster> clusters;
  clusters.push_back(cluster::Cluster::Homogeneous(
      "hot", 2, cluster::TaskShape{16.0, 64.0, 8.0}));
  clusters.push_back(cluster::Cluster::Homogeneous(
      "cold", 2, cluster::TaskShape{16.0, 64.0, 8.0}));
  return cluster::Fleet(std::move(clusters),
                        cluster::TaskShape{10.0, 1.5, 0.8});
}

TEST(ReservePricerTest, AppliesEquation4) {
  PoolRegistry reg;
  reg.Intern("c", ResourceKind::kCpu);
  ReservePricer pricer(MakeExp2Weighting());
  const std::vector<double> util = {0.75};
  const std::vector<double> cost = {10.0};
  const std::vector<double> prices = pricer.Price(reg, util, cost);
  EXPECT_NEAR(prices[0], std::exp(2.0 * 0.25) * 10.0, 1e-9);
}

TEST(ReservePricerTest, CongestedPoolsCostMoreThanIdle) {
  cluster::Fleet fleet = TwoClusterFleet();
  // Load the hot cluster to ~75% CPU.
  cluster::Job job;
  job.id = 1;
  job.team = "t";
  job.shape = {2.0, 4.0, 0.5};
  job.tasks = 12;
  ASSERT_TRUE(fleet.AddJob("hot", job));

  ReservePricer pricer(MakeExp2Weighting());
  const std::vector<double> prices = pricer.PriceFleet(fleet);
  const auto hot_cpu =
      fleet.registry().Find(PoolKey{"hot", ResourceKind::kCpu});
  const auto cold_cpu =
      fleet.registry().Find(PoolKey{"cold", ResourceKind::kCpu});
  EXPECT_GT(prices[*hot_cpu], prices[*cold_cpu]);
  // Idle pool is discounted below cost; congested priced above.
  EXPECT_LT(prices[*cold_cpu], 10.0);
  EXPECT_GT(prices[*hot_cpu], 10.0);
}

TEST(ReservePricerTest, PerKindCurves) {
  PoolRegistry reg;
  const PoolId cpu = reg.Intern("c", ResourceKind::kCpu);
  const PoolId ram = reg.Intern("c", ResourceKind::kRam);
  const PoolId disk = reg.Intern("c", ResourceKind::kDisk);
  std::vector<std::shared_ptr<const WeightingFunction>> curves = {
      std::shared_ptr<const WeightingFunction>(MakeExp2Weighting()),
      std::shared_ptr<const WeightingFunction>(MakeExpWeighting()),
      std::shared_ptr<const WeightingFunction>(MakeFlatWeighting()),
  };
  ReservePricer pricer(std::move(curves));
  const std::vector<double> util = {0.9, 0.9, 0.9};
  const std::vector<double> cost = {1.0, 1.0, 1.0};
  const std::vector<double> prices = pricer.Price(reg, util, cost);
  EXPECT_NEAR(prices[cpu], std::exp(0.8), 1e-9);
  EXPECT_NEAR(prices[ram], std::exp(0.4), 1e-9);
  EXPECT_NEAR(prices[disk], 1.0, 1e-9);
}

TEST(ReservePricerTest, ClampsUtilizationToUnitInterval) {
  PoolRegistry reg;
  reg.Intern("c", ResourceKind::kCpu);
  ReservePricer pricer(MakeReciprocalWeighting());
  const std::vector<double> util = {1.7};  // Bad input clamps to 1.0.
  const std::vector<double> cost = {1.0};
  EXPECT_NEAR(pricer.Price(reg, util, cost)[0], 2.0, 1e-9);
}

TEST(ReservePricerTest, SizeMismatchThrows) {
  PoolRegistry reg;
  reg.Intern("c", ResourceKind::kCpu);
  ReservePricer pricer(MakeExpWeighting());
  const std::vector<double> util = {0.5, 0.5};
  const std::vector<double> cost = {1.0};
  EXPECT_THROW(pricer.Price(reg, util, cost), pm::CheckFailure);
}

TEST(ReservePricerTest, NegativeCostThrows) {
  PoolRegistry reg;
  reg.Intern("c", ResourceKind::kCpu);
  ReservePricer pricer(MakeExpWeighting());
  const std::vector<double> util = {0.5};
  const std::vector<double> cost = {-1.0};
  EXPECT_THROW(pricer.Price(reg, util, cost), pm::CheckFailure);
}

}  // namespace
}  // namespace pm::reserve
