// Cross-module integration tests: the full §V pipeline — TBBL source →
// bids → clock auction → settlement, and multi-auction market dynamics
// (migration away from congestion, premium decline, spread reduction).
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>

#include "agents/workload_gen.h"
#include "auction/settlement.h"
#include "auction/system_check.h"
#include "bid/tbbl_flatten.h"
#include "exchange/market.h"
#include "exchange/summary.h"
#include "sim/event_queue.h"
#include "sim/process.h"

namespace pm {
namespace {

// --------------------------------------------- TBBL → auction end-to-end --

TEST(PipelineTest, BidLanguageDrivesAuction) {
  // Two teams compete for cluster "hot"; one is flexible and should be
  // priced over to "cold".
  const char* source = R"(
    # Team alpha is locked to the hot cluster.
    bid "alpha" limit 5000 {
      and { cpu@hot: 100 ram@hot: 200 }
    }
    # Team beta takes hot or cold, whichever clears cheaper.
    bid "beta" limit 5000 {
      xor {
        and { cpu@hot: 100 ram@hot: 200 }
        and { cpu@cold: 100 ram@cold: 200 }
      }
    }
    # Team gamma vacates hot RAM.
    offer "gamma" min 10 {
      ram@hot: 50
    }
  )";
  PoolRegistry registry;
  const bid::FlattenOutcome compiled =
      bid::CompileBids(source, registry);
  ASSERT_TRUE(compiled.ok()) << compiled.error;
  ASSERT_EQ(compiled.bids.size(), 3u);
  ASSERT_EQ(registry.size(), 4u);  // cpu@hot ram@hot cpu@cold ram@cold.

  // Supply: hot can host only one of the two big bundles (with gamma's
  // 50 RAM back in the pool); cold has plenty.
  std::vector<double> supply(registry.size(), 0.0);
  std::vector<double> reserve(registry.size(), 1.0);
  const PoolId cpu_hot = *registry.Find(PoolKey{"hot", ResourceKind::kCpu});
  const PoolId ram_hot = *registry.Find(PoolKey{"hot", ResourceKind::kRam});
  const PoolId cpu_cold =
      *registry.Find(PoolKey{"cold", ResourceKind::kCpu});
  const PoolId ram_cold =
      *registry.Find(PoolKey{"cold", ResourceKind::kRam});
  supply[cpu_hot] = 120.0;
  supply[ram_hot] = 180.0;  // 180 + 50 sold by gamma < 400 needed by both.
  supply[cpu_cold] = 500.0;
  supply[ram_cold] = 1000.0;
  reserve[cpu_hot] = 2.0;  // Congested cluster starts pricier.
  reserve[ram_hot] = 0.5;
  reserve[cpu_cold] = 0.8;
  reserve[ram_cold] = 0.2;

  auction::ClockAuction auction(compiled.bids, supply, reserve);
  auction::ClockAuctionConfig config;
  config.alpha = 0.4;
  config.delta = 0.05;
  const auction::ClockAuctionResult result = auction.Run(config);
  ASSERT_TRUE(result.converged);
  const auction::SystemCheckResult check =
      auction::CheckSystemConstraints(auction, result);
  ASSERT_TRUE(check.Feasible()) << check.ToString();

  // alpha wins hot (its only option), beta must flex to cold.
  ASSERT_TRUE(result.decisions[0].Active());
  ASSERT_TRUE(result.decisions[1].Active());
  EXPECT_EQ(result.decisions[0].bundle_index, 0);
  const bid::Bundle& beta_bundle =
      compiled.bids[1].bundles[static_cast<std::size_t>(
          result.decisions[1].bundle_index)];
  EXPECT_GT(beta_bundle.QuantityOf(cpu_cold), 0.0);
  EXPECT_EQ(beta_bundle.QuantityOf(cpu_hot), 0.0);

  const auction::Settlement settlement =
      auction::Settle(auction, result);
  EXPECT_EQ(settlement.awards.size() + settlement.losers.size(), 3u);
}

// -------------------------------------------------- longitudinal dynamics --

agents::WorkloadConfig MediumWorld(std::uint64_t seed) {
  agents::WorkloadConfig config;
  config.num_clusters = 10;
  config.num_teams = 40;
  config.min_machines_per_cluster = 20;
  config.max_machines_per_cluster = 40;
  config.seed = seed;
  return config;
}

exchange::MarketConfig FastMarket() {
  exchange::MarketConfig config;
  config.auction.alpha = 0.4;
  config.auction.delta = 0.08;
  config.auction.max_rounds = 30000;
  return config;
}

TEST(MarketDynamicsTest, SixAuctionsRunToCompletion) {
  agents::World world = GenerateWorld(MediumWorld(101));
  exchange::Market market(&world.fleet, &world.agents,
                          world.fixed_prices, FastMarket());
  for (int i = 0; i < 6; ++i) {
    const exchange::AuctionReport report = market.RunAuction();
    EXPECT_TRUE(report.converged) << "auction " << i;
    EXPECT_EQ(market.ledger().TotalBalance(), Money());  // Conservation.
  }
  EXPECT_EQ(market.AuctionCount(), 6);
}

TEST(MarketDynamicsTest, CongestedPricesCarryPremiums) {
  agents::World world = GenerateWorld(MediumWorld(202));
  exchange::Market market(&world.fleet, &world.agents,
                          world.fixed_prices, FastMarket());
  const exchange::AuctionReport report = market.RunAuction();
  // Group pools by pre-auction utilization; the hot half must be priced
  // above the cold half relative to fixed prices.
  const std::vector<double> ratios = exchange::PriceRatios(report);
  double hot_sum = 0.0, cold_sum = 0.0;
  int hot_n = 0, cold_n = 0;
  for (std::size_t r = 0; r < ratios.size(); ++r) {
    if (std::isnan(ratios[r])) continue;
    if (report.pre_utilization[r] > 0.6) {
      hot_sum += ratios[r];
      ++hot_n;
    } else if (report.pre_utilization[r] < 0.3) {
      cold_sum += ratios[r];
      ++cold_n;
    }
  }
  ASSERT_GT(hot_n, 0);
  ASSERT_GT(cold_n, 0);
  EXPECT_GT(hot_sum / hot_n, cold_sum / cold_n);
}

TEST(MarketDynamicsTest, BidsFavorColdOffersFavorHotClusters) {
  // Figure 7's headline shape, asserted on aggregate medians.
  agents::World world = GenerateWorld(MediumWorld(303));
  exchange::Market market(&world.fleet, &world.agents,
                          world.fixed_prices, FastMarket());
  market.RunAuction();
  std::vector<double> bid_pct, offer_pct;
  for (const exchange::AuctionReport& report : market.History()) {
    for (const exchange::TradeSample& t : report.trades) {
      (t.is_bid ? bid_pct : offer_pct).push_back(t.util_percentile);
    }
  }
  ASSERT_FALSE(bid_pct.empty());
  ASSERT_FALSE(offer_pct.empty());
  EXPECT_LT(stats::Median(bid_pct), stats::Median(offer_pct));
}

TEST(MarketDynamicsTest, MedianPremiumDeclinesAcrossAuctions) {
  // Table I's trend: as learners adapt, the median γ falls.
  agents::World world = GenerateWorld(MediumWorld(404));
  exchange::Market market(&world.fleet, &world.agents,
                          world.fixed_prices, FastMarket());
  std::vector<double> medians;
  for (int i = 0; i < 4; ++i) {
    const exchange::AuctionReport report = market.RunAuction();
    if (report.premium.count > 0) {
      medians.push_back(report.premium.median);
    }
  }
  ASSERT_GE(medians.size(), 3u);
  EXPECT_LT(medians.back(), medians.front());
}

TEST(MarketDynamicsTest, UtilizationSpreadNarrows) {
  // The abstract's claim: the market reduces shortages/surpluses, i.e.
  // cross-pool utilization dispersion shrinks over repeated auctions.
  agents::World world = GenerateWorld(MediumWorld(505));
  exchange::Market market(&world.fleet, &world.agents,
                          world.fixed_prices, FastMarket());
  const double spread_before =
      exchange::UtilizationSpread(world.fleet.UtilizationVector());
  for (int i = 0; i < 5; ++i) market.RunAuction();
  const double spread_after =
      exchange::UtilizationSpread(world.fleet.UtilizationVector());
  EXPECT_LT(spread_after, spread_before);
}

TEST(MarketDynamicsTest, TeamsMigrateFromCongestedClusters) {
  agents::World world = GenerateWorld(MediumWorld(606));
  // Pre-market utilization per cluster (CPU, the contended dimension).
  std::unordered_map<std::string, double> pre_util;
  std::vector<double> utils;
  for (const std::string& name : world.fleet.ClusterNames()) {
    const double u =
        world.fleet.ClusterByName(name).Utilization(ResourceKind::kCpu);
    pre_util[name] = u;
    utils.push_back(u);
  }
  const double median_util = stats::Median(utils);

  exchange::Market market(&world.fleet, &world.agents,
                          world.fixed_prices, FastMarket());
  std::size_t vacating_hot = 0;
  std::size_t vacating_cold = 0;
  for (int i = 0; i < 6; ++i) {
    const exchange::AuctionReport report = market.RunAuction();
    for (const exchange::MoveRecord& move : report.moves) {
      if (move.from_cluster.empty()) continue;
      if (pre_util[move.from_cluster] > median_util) {
        ++vacating_hot;
      } else {
        ++vacating_cold;
      }
    }
  }
  // Departures concentrate in the congested half of the fleet (§V.B:
  // teams "offer resources on the market ... and move to less congested
  // clusters").
  EXPECT_GT(vacating_hot, 0u);
  EXPECT_GE(vacating_hot, vacating_cold);
}

TEST(MarketDynamicsTest, PeriodicProcessDrivesAuctions) {
  // The §V cadence: an auction every simulated week via the sim core.
  agents::World world = GenerateWorld(MediumWorld(707));
  exchange::Market market(&world.fleet, &world.agents,
                          world.fixed_prices, FastMarket());
  sim::EventQueue queue;
  sim::PeriodicProcess auctions(queue, /*first_at=*/168.0,
                                /*period=*/168.0, [&](int tick) {
                                  market.RunAuction();
                                  return tick < 2;  // Three auctions.
                                });
  queue.RunAll();
  EXPECT_EQ(market.AuctionCount(), 3);
  EXPECT_DOUBLE_EQ(queue.Now(), 3 * 168.0);
}

TEST(MarketDynamicsTest, SummaryReflectsLatestAuction) {
  agents::World world = GenerateWorld(MediumWorld(808));
  exchange::Market market(&world.fleet, &world.agents,
                          world.fixed_prices, FastMarket());
  market.RunAuction();
  market.RunAuction();
  const std::string out = exchange::RenderMarketSummary(market);
  EXPECT_NE(out.find("after auction #2"), std::string::npos);
}

TEST(MarketDynamicsTest, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    agents::World world = GenerateWorld(MediumWorld(909));
    exchange::Market market(&world.fleet, &world.agents,
                            world.fixed_prices, FastMarket());
    std::vector<double> prices;
    for (int i = 0; i < 3; ++i) {
      const exchange::AuctionReport report = market.RunAuction();
      prices.insert(prices.end(), report.settled_prices.begin(),
                    report.settled_prices.end());
    }
    return prices;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace pm
