// Tests for the §I quota registry — entitlements granted by the market,
// usage charged by placement — and its integration with Market and the
// churn admission path.
#include <gtest/gtest.h>

#include "agents/workload_gen.h"
#include "cluster/quota.h"
#include "common/check.h"
#include "common/rng.h"
#include "exchange/churn.h"
#include "exchange/market.h"

namespace pm::cluster {
namespace {

PoolRegistry ThreePoolRegistry() {
  PoolRegistry reg;
  for (ResourceKind kind : kAllResourceKinds) reg.Intern("c1", kind);
  return reg;
}

TEST(QuotaTableTest, GrantAndEntitlement) {
  QuotaTable quota;
  EXPECT_EQ(quota.EntitlementOf("t", 0), 0.0);
  quota.Grant("t", 0, 10.0);
  quota.Grant("t", 0, 5.0);
  EXPECT_DOUBLE_EQ(quota.EntitlementOf("t", 0), 15.0);
  EXPECT_EQ(quota.EntitlementOf("t", 1), 0.0);
  EXPECT_EQ(quota.EntitlementOf("other", 0), 0.0);
}

TEST(QuotaTableTest, ReleaseClampsAtZero) {
  QuotaTable quota;
  quota.Grant("t", 0, 10.0);
  quota.Release("t", 0, 4.0);
  EXPECT_DOUBLE_EQ(quota.EntitlementOf("t", 0), 6.0);
  quota.Release("t", 0, 100.0);
  EXPECT_DOUBLE_EQ(quota.EntitlementOf("t", 0), 0.0);
}

TEST(QuotaTableTest, NegativeAmountsThrow) {
  QuotaTable quota;
  EXPECT_THROW(quota.Grant("t", 0, -1.0), CheckFailure);
  EXPECT_THROW(quota.Release("t", 0, -1.0), CheckFailure);
}

TEST(QuotaTableTest, ChargeRefundTracksUsage) {
  const PoolRegistry reg = ThreePoolRegistry();
  QuotaTable quota;
  const TaskShape demand{4.0, 16.0, 2.0};
  quota.Charge("t", reg, "c1", demand);
  const auto cpu = reg.Find(PoolKey{"c1", ResourceKind::kCpu});
  const auto ram = reg.Find(PoolKey{"c1", ResourceKind::kRam});
  EXPECT_DOUBLE_EQ(quota.UsageOf("t", *cpu), 4.0);
  EXPECT_DOUBLE_EQ(quota.UsageOf("t", *ram), 16.0);
  quota.Refund("t", reg, "c1", demand);
  EXPECT_DOUBLE_EQ(quota.UsageOf("t", *cpu), 0.0);
  // Refund clamps at zero.
  quota.Refund("t", reg, "c1", demand);
  EXPECT_DOUBLE_EQ(quota.UsageOf("t", *cpu), 0.0);
}

TEST(QuotaTableTest, HeadroomAndWouldExceed) {
  const PoolRegistry reg = ThreePoolRegistry();
  QuotaTable quota;
  const auto cpu = reg.Find(PoolKey{"c1", ResourceKind::kCpu});
  const auto ram = reg.Find(PoolKey{"c1", ResourceKind::kRam});
  const auto disk = reg.Find(PoolKey{"c1", ResourceKind::kDisk});
  quota.Grant("t", *cpu, 10.0);
  quota.Grant("t", *ram, 40.0);
  quota.Grant("t", *disk, 5.0);
  EXPECT_FALSE(quota.WouldExceed("t", reg, "c1", {10.0, 40.0, 5.0}));
  EXPECT_TRUE(quota.WouldExceed("t", reg, "c1", {10.1, 1.0, 1.0}));
  quota.Charge("t", reg, "c1", {6.0, 10.0, 1.0});
  EXPECT_DOUBLE_EQ(quota.HeadroomOf("t", *cpu), 4.0);
  EXPECT_TRUE(quota.WouldExceed("t", reg, "c1", {5.0, 1.0, 1.0}));
  EXPECT_FALSE(quota.WouldExceed("t", reg, "c1", {4.0, 1.0, 1.0}));
}

TEST(QuotaTableTest, UnknownClusterNeverAdmitted) {
  const PoolRegistry reg = ThreePoolRegistry();
  QuotaTable quota;
  quota.Grant("t", 0, 100.0);
  EXPECT_TRUE(quota.WouldExceed("t", reg, "nowhere", {1.0, 1.0, 1.0}));
}

TEST(QuotaTableTest, OverQuotaDetection) {
  const PoolRegistry reg = ThreePoolRegistry();
  QuotaTable quota;
  const auto cpu = reg.Find(PoolKey{"c1", ResourceKind::kCpu});
  quota.Grant("t", *cpu, 5.0);
  quota.Charge("t", reg, "c1", {5.0, 0.0, 0.0});
  EXPECT_FALSE(quota.OverQuota("t"));
  // The market released quota out from under running usage (§ release
  // semantics): the team is now over quota until capacity is vacated.
  quota.Release("t", *cpu, 3.0);
  EXPECT_TRUE(quota.OverQuota("t"));
  EXPECT_FALSE(quota.OverQuota("ghost"));
}

TEST(QuotaTableTest, TeamsListedInFirstSeenOrder) {
  QuotaTable quota;
  quota.Grant("b", 0, 1.0);
  quota.Grant("a", 0, 1.0);
  quota.Grant("b", 1, 1.0);
  EXPECT_EQ(quota.Teams(), (std::vector<std::string>{"b", "a"}));
}

// ---------------------------------------------------- market integration --

agents::WorkloadConfig SmallWorld(std::uint64_t seed) {
  agents::WorkloadConfig config;
  config.num_clusters = 6;
  config.num_teams = 20;
  config.min_machines_per_cluster = 12;
  config.max_machines_per_cluster = 22;
  config.seed = seed;
  return config;
}

/// Recomputes per-(team, pool) usage from the fleet's actual jobs and
/// compares with the quota table's incremental bookkeeping.
void ExpectUsageMatchesFleet(const exchange::Market& market,
                             const cluster::Fleet& fleet) {
  const PoolRegistry& registry = fleet.registry();
  std::unordered_map<std::string, std::vector<double>> actual;
  for (const JobLocation& loc : fleet.AllJobs()) {
    const Job* job = fleet.ClusterByName(loc.cluster).FindJob(loc.job);
    ASSERT_NE(job, nullptr);
    auto& usage = actual[job->team];
    usage.resize(registry.size(), 0.0);
    const TaskShape demand = job->TotalDemand();
    for (ResourceKind kind : kAllResourceKinds) {
      const auto pool = registry.Find(PoolKey{loc.cluster, kind});
      ASSERT_TRUE(pool.has_value());
      usage[*pool] += demand.Of(kind);
    }
  }
  for (const auto& [team, usage] : actual) {
    for (PoolId pool = 0; pool < registry.size(); ++pool) {
      EXPECT_NEAR(market.quota().UsageOf(team, pool), usage[pool],
                  1e-6 + 1e-9 * usage[pool])
          << team << " pool " << registry.NameOf(pool);
    }
  }
}

TEST(QuotaMarketTest, BootstrapMatchesInitialFootprints) {
  agents::World world = GenerateWorld(SmallWorld(11));
  exchange::Market market(&world.fleet, &world.agents,
                          world.fixed_prices, exchange::MarketConfig{});
  ExpectUsageMatchesFleet(market, world.fleet);
  // Initially usage == entitlement: nobody is over quota.
  for (const std::string& team : market.quota().Teams()) {
    EXPECT_FALSE(market.quota().OverQuota(team)) << team;
  }
}

TEST(QuotaMarketTest, UsageBookkeepingSurvivesAuctions) {
  agents::World world = GenerateWorld(SmallWorld(12));
  exchange::Market market(&world.fleet, &world.agents,
                          world.fixed_prices, exchange::MarketConfig{});
  for (int a = 0; a < 3; ++a) {
    market.RunAuction();
    ExpectUsageMatchesFleet(market, world.fleet);
  }
}

TEST(QuotaMarketTest, SettledTradesMoveEntitlements) {
  agents::World world = GenerateWorld(SmallWorld(13));
  exchange::Market market(&world.fleet, &world.agents,
                          world.fixed_prices, exchange::MarketConfig{});
  // Total entitlement before == total job demand; after an auction the
  // winners' entitlements must reflect their awarded bundles.
  const exchange::AuctionReport report = market.RunAuction();
  // At least some award granted quota (every auction here settles
  // something).
  ASSERT_GT(report.num_winners, 0u);
  double total_entitlement = 0.0;
  for (const std::string& team : market.quota().Teams()) {
    for (PoolId pool = 0; pool < world.fleet.NumPools(); ++pool) {
      total_entitlement += market.quota().EntitlementOf(team, pool);
    }
  }
  EXPECT_GT(total_entitlement, 0.0);
}

TEST(QuotaChurnTest, AdmissionControlEnforcesQuota) {
  agents::World world = GenerateWorld(SmallWorld(14));
  exchange::Market market(&world.fleet, &world.agents,
                          world.fixed_prices, exchange::MarketConfig{});
  sim::EventQueue queue;
  exchange::ChurnConfig config;
  config.arrival_rate = 4.0;
  config.mean_lifetime = 1e6;  // Effectively immortal: pressure builds.
  config.seed = 9;
  exchange::ChurnProcess churn(queue, &world.fleet, &world.agents,
                               config, &market.mutable_quota());
  queue.RunUntil(400.0);
  churn.Stop();
  // With no market granting new quota, teams hit their ceilings: the
  // admission path must have rejected arrivals...
  EXPECT_GT(churn.stats().quota_rejections, 0);
  // ...and bookkeeping still matches physical reality.
  ExpectUsageMatchesFleet(market, world.fleet);
  // Hard §I property: no team exceeds its entitlement.
  for (const std::string& team : market.quota().Teams()) {
    EXPECT_FALSE(market.quota().OverQuota(team, 1e-6)) << team;
  }
}

// ------------------------------------------------------- random sweeps --

class QuotaFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(QuotaFuzzTest, InvariantsHoldUnderRandomOperations) {
  const PoolRegistry reg = ThreePoolRegistry();
  QuotaTable quota;
  RandomStream rng(8800 + static_cast<std::uint64_t>(GetParam()));
  const std::vector<std::string> teams = {"a", "b", "c"};
  for (int op = 0; op < 2000; ++op) {
    const std::string& team =
        teams[static_cast<std::size_t>(rng.UniformInt(0, 2))];
    const auto pool = static_cast<PoolId>(rng.UniformInt(0, 2));
    const double amount = rng.Uniform(0.0, 20.0);
    switch (rng.UniformInt(0, 3)) {
      case 0:
        quota.Grant(team, pool, amount);
        break;
      case 1:
        quota.Release(team, pool, amount);
        break;
      case 2:
        quota.Charge(team, reg, "c1", {amount, amount, amount});
        break;
      default:
        quota.Refund(team, reg, "c1", {amount, amount, amount});
        break;
    }
    // Invariants: entitlements and usage never negative; headroom is
    // their difference; WouldExceed consistent with headroom.
    for (const std::string& t : teams) {
      for (PoolId r = 0; r < reg.size(); ++r) {
        EXPECT_GE(quota.EntitlementOf(t, r), 0.0);
        EXPECT_GE(quota.UsageOf(t, r), 0.0);
        EXPECT_NEAR(quota.HeadroomOf(t, r),
                    quota.EntitlementOf(t, r) - quota.UsageOf(t, r),
                    1e-9);
      }
    }
  }
}

TEST_P(QuotaFuzzTest, WouldExceedAgreesWithChargeOutcome) {
  const PoolRegistry reg = ThreePoolRegistry();
  QuotaTable quota;
  RandomStream rng(8900 + static_cast<std::uint64_t>(GetParam()));
  quota.Grant("t", 0, rng.Uniform(10, 50));
  quota.Grant("t", 1, rng.Uniform(10, 200));
  quota.Grant("t", 2, rng.Uniform(10, 50));
  for (int i = 0; i < 200; ++i) {
    const TaskShape demand{rng.Uniform(0.1, 10.0),
                           rng.Uniform(0.1, 40.0),
                           rng.Uniform(0.1, 10.0)};
    if (!quota.WouldExceed("t", reg, "c1", demand)) {
      quota.Charge("t", reg, "c1", demand);
      EXPECT_FALSE(quota.OverQuota("t", 1e-6));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuotaFuzzTest, ::testing::Range(0, 6));

TEST(QuotaChurnTest, WithoutTableChurnIsUnconstrained) {
  agents::World world = GenerateWorld(SmallWorld(15));
  sim::EventQueue queue;
  exchange::ChurnConfig config;
  config.arrival_rate = 2.0;
  config.seed = 10;
  exchange::ChurnProcess churn(queue, &world.fleet, &world.agents,
                               config);  // No quota table.
  queue.RunUntil(100.0);
  EXPECT_EQ(churn.stats().quota_rejections, 0);
}

}  // namespace
}  // namespace pm::cluster
