// Tests for the telemetry plane (src/telemetry/) and its federation
// wiring.
//
// The contracts under test, in the order docs/observability.md states
// them:
//   1. registry determinism — export bytes depend on which metrics were
//      recorded, never on recording order; the timing block stays out of
//      the deterministic channel unless explicitly requested;
//   2. off means off — with TelemetryConfig::enabled false the epoch's
//      market outcomes are bit-identical to a federation without the
//      plane (property-tested over the whole scenario registry);
//   3. byte-identical exports — metrics JSON, trace JSON and Prometheus
//      text are equal across reruns AND across thread counts;
//   4. containment flight dumps — a supervised shard crash dumps the
//      failing bid's full span chain, the failure reason and the
//      health-machine transition.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "common/check.h"
#include "federation/federated_exchange.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/registry.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace pm::telemetry {
namespace {

// ------------------------------------------------------------- registry --

TEST(RenderKeyTest, OmitsEmptyLabelsAndOrdersComponents) {
  EXPECT_EQ(RenderKey("up", Labels{}), "up");
  EXPECT_EQ(RenderKey("up", Labels{"s0", "", ""}), "up{shard=\"s0\"}");
  EXPECT_EQ(RenderKey("up", Labels{"s0", "cpu", "route"}),
            "up{shard=\"s0\",kind=\"cpu\",phase=\"route\"}");
  EXPECT_EQ(RenderKey("up", Labels{"", "", "settle"}),
            "up{phase=\"settle\"}");
}

TEST(MetricsRegistryTest, ExportIgnoresRecordingOrder) {
  const auto record = [](MetricsRegistry& reg, bool reversed) {
    const std::vector<std::pair<std::string, double>> counters = {
        {"beta", 2.0}, {"alpha", 1.0}, {"gamma", 3.0}};
    if (reversed) {
      for (auto it = counters.rbegin(); it != counters.rend(); ++it) {
        reg.AddCounter(it->first, Labels{}, it->second);
      }
      reg.Observe("lat", Labels{"s1", "", ""}, 2.0, 0.0, 10.0, 5);
      reg.Observe("lat", Labels{"s0", "", ""}, 1.0, 0.0, 10.0, 5);
    } else {
      for (const auto& [name, value] : counters) {
        reg.AddCounter(name, Labels{}, value);
      }
      reg.Observe("lat", Labels{"s0", "", ""}, 1.0, 0.0, 10.0, 5);
      reg.Observe("lat", Labels{"s1", "", ""}, 2.0, 0.0, 10.0, 5);
    }
    reg.SetGauge("temp", Labels{}, 7.0);
    reg.SnapshotEpoch(0);
  };
  MetricsRegistry forward;
  MetricsRegistry backward;
  record(forward, false);
  record(backward, true);
  EXPECT_EQ(forward.ToJson(), backward.ToJson());
  EXPECT_EQ(forward.ToPrometheusText(), backward.ToPrometheusText());
}

TEST(MetricsRegistryTest, CountersAreMonotone) {
  MetricsRegistry reg;
  reg.AddCounter("n", Labels{}, 2.0);
  reg.AddCounter("n", Labels{}, 0.0);
  EXPECT_DOUBLE_EQ(reg.CounterValue("n", Labels{}), 2.0);
  EXPECT_THROW(reg.AddCounter("n", Labels{}, -1.0), CheckFailure);
}

TEST(MetricsRegistryTest, HistogramShapeIsPerName) {
  MetricsRegistry reg;
  reg.Observe("lat", Labels{"a", "", ""}, 1.0, 0.0, 10.0, 5);
  // A second label set of the same name must share the shape, or the
  // cross-label merge in the JSON aggregate could never be valid.
  EXPECT_THROW(reg.Observe("lat", Labels{"b", "", ""}, 1.0, 0.0, 20.0, 5),
               CheckFailure);
  reg.Observe("lat", Labels{"b", "", ""}, 12.0, 0.0, 10.0, 5);
  ASSERT_NE(reg.FindHistogram("lat", Labels{"b", "", ""}), nullptr);
  EXPECT_EQ(reg.FindHistogram("lat", Labels{"b", "", ""})->Overflow(), 1u);
}

TEST(MetricsRegistryTest, TimingBlockIsOptIn) {
  MetricsRegistry reg;
  reg.AddCounter("n", Labels{}, 1.0);
  reg.RecordTiming("epoch_wall_seconds", 0.125);
  EXPECT_EQ(reg.ToJson().find("timings"), std::string::npos);
  EXPECT_NE(reg.ToJson(/*include_timings=*/true).find("timings"),
            std::string::npos);
  EXPECT_NE(reg.ToJson(true).find("epoch_wall_seconds"),
            std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusExpositionShape) {
  MetricsRegistry reg;
  reg.AddCounter("fed_rounds", Labels{"s0", "", ""}, 3.0);
  reg.AddCounter("fed_rounds", Labels{"s1", "", ""}, 5.0);
  reg.SetGauge("fed_util", Labels{}, 0.5);
  reg.Observe("fed_price", Labels{"s0", "", ""}, 2.5, 0.0, 10.0, 2);
  const std::string text = reg.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE fed_rounds counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fed_util gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fed_price histogram"), std::string::npos);
  EXPECT_NE(text.find("fed_rounds{shard=\"s0\"} 3.000000"),
            std::string::npos);
  // Cumulative buckets with the +Inf catch-all, plus _sum and _count.
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("fed_price_sum"), std::string::npos);
  EXPECT_NE(text.find("fed_price_count"), std::string::npos);
  // One # TYPE line per metric name, not per label set.
  std::size_t type_lines = 0;
  for (std::size_t at = text.find("# TYPE fed_rounds");
       at != std::string::npos;
       at = text.find("# TYPE fed_rounds", at + 1)) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
}

// ------------------------------------------------------ tracer/recorder --

TEST(BidTracerTest, SpansCarryLogicalTimeAndJoinByTrace) {
  BidTracer tracer;
  const std::uint64_t a = tracer.NewTrace();
  const std::uint64_t b = tracer.NewTrace();
  EXPECT_NE(a, b);
  Span& submit = tracer.Emit(a, "submit", 0, -1);
  submit.attrs.emplace_back("team", "globex");
  tracer.Emit(b, "submit", 0, -1);
  tracer.Emit(a, "route", 0, -1);
  EXPECT_EQ(tracer.SpansOf(a).size(), 2u);
  EXPECT_EQ(tracer.SpansOf(b).size(), 1u);
  EXPECT_EQ(tracer.spans()[0].seq, 1u);
  EXPECT_EQ(tracer.spans()[2].seq, 3u);
  const std::string line = tracer.spans()[0].Render();
  EXPECT_NE(line.find("submit"), std::string::npos);
  EXPECT_NE(line.find("team=globex"), std::string::npos);
}

TEST(FlightRecorderTest, RingRotatesAtCapacity) {
  FlightRecorder recorder(/*num_shards=*/1, /*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    FlightEvent event;
    event.epoch = i;
    event.line = "event-" + std::to_string(i);
    recorder.Record(0, std::move(event));
  }
  ASSERT_EQ(recorder.Ring(0).size(), 3u);
  EXPECT_EQ(recorder.Ring(0).front().line, "event-2");
  EXPECT_EQ(recorder.Ring(0).back().line, "event-4");
}

// -------------------------------------------------- federation fixtures --

agents::WorkloadConfig SmallWorkload() {
  agents::WorkloadConfig config;
  config.num_clusters = 4;
  config.num_teams = 12;
  config.min_machines_per_cluster = 10;
  config.max_machines_per_cluster = 20;
  return config;
}

std::vector<federation::ShardSpec> TwoShards() {
  std::vector<federation::ShardSpec> specs;
  for (const char* name : {"alpha", "beta"}) {
    federation::ShardSpec spec;
    spec.name = name;
    spec.workload = SmallWorkload();
    spec.market.auction.alpha = 0.4;
    spec.market.auction.delta = 0.08;
    spec.market.auction.max_rounds = 30000;
    specs.push_back(std::move(spec));
  }
  return specs;
}

federation::FederationConfig SupervisedTelemetryConfig() {
  federation::FederationConfig config;
  config.supervisor.enabled = true;
  config.supervisor.quarantine_streak = 1;
  config.telemetry.enabled = true;
  return config;
}

federation::FederatedBid HomeBid(const std::string& home) {
  federation::FederatedBid bid;
  bid.team = "globex";
  bid.tag = "rollout";
  bid.quantity = cluster::TaskShape{20.0, 80.0, 2.0};
  bid.limit = 50000.0;
  bid.home_shard = home;
  return bid;
}

// ------------------------------------------------- containment flight dump --

TEST(FlightDumpTest, CrashDumpCarriesBidChainAndTransition) {
  federation::FederationConfig config = SupervisedTelemetryConfig();
  config.router.policy = federation::RoutingPolicy::kHomeAffinity;
  // An absurd spill threshold pins the bid to its home shard, so the
  // crash provably hits the shard the traced bid landed on.
  config.router.spill_threshold = 1e9;
  federation::FederatedExchange fed(TwoShards(), config);
  fed.EndowFederatedTeam("globex", Money::FromDollars(100000));
  fed.SubmitFederatedBid(HomeBid("alpha"));
  fed.InjectShardFailure(0);
  const federation::FederationReport report = fed.RunEpoch();
  EXPECT_EQ(report.health.failed_shards, 1u);

  const Telemetry* telemetry = fed.telemetry();
  ASSERT_NE(telemetry, nullptr);
  ASSERT_EQ(telemetry->recorder().dumps().size(), 1u);
  const FlightDump& dump = telemetry->recorder().dumps()[0];
  EXPECT_EQ(dump.shard, 0u);
  EXPECT_EQ(dump.shard_name, "alpha");
  EXPECT_EQ(dump.epoch, 0);
  EXPECT_NE(dump.reason.find("injected failure"), std::string::npos);
  // quarantine_streak == 1: the first failure quarantines outright.
  EXPECT_EQ(dump.transition, "healthy -> quarantined");
  // The failing bid's full lifecycle chain is in the dump text: the
  // federation-level submit and route spans, the shard-scoped enqueue,
  // and the crashed shard-auction span.
  EXPECT_NE(dump.text.find("submit"), std::string::npos);
  EXPECT_NE(dump.text.find("route"), std::string::npos);
  EXPECT_NE(dump.text.find("enqueue"), std::string::npos);
  EXPECT_NE(dump.text.find("shard-auction"), std::string::npos);
  EXPECT_NE(dump.text.find("outcome=crashed"), std::string::npos);
  EXPECT_NE(dump.text.find("fed/globex/rollout"), std::string::npos);
  EXPECT_NE(dump.text.find("healthy -> quarantined"), std::string::npos);
  // The ring kept the health event and the crash event.
  EXPECT_NE(dump.text.find("auction crashed"), std::string::npos);

  // The bid itself was rerouted (its only part was on the failed shard):
  // its trace carries a reroute span.
  bool saw_reroute = false;
  for (const Span& span : telemetry->tracer().spans()) {
    saw_reroute = saw_reroute || span.name == "reroute";
  }
  EXPECT_TRUE(saw_reroute);
}

TEST(FlightDumpTest, DumpBytesStableAcrossRerunsAndThreads) {
  const auto run = [](std::size_t threads) {
    federation::FederationConfig config = SupervisedTelemetryConfig();
    config.num_threads = threads;
    config.router.policy = federation::RoutingPolicy::kHomeAffinity;
    config.router.spill_threshold = 1e9;
    federation::FederatedExchange fed(TwoShards(), config);
    fed.EndowFederatedTeam("globex", Money::FromDollars(100000));
    fed.SubmitFederatedBid(HomeBid("alpha"));
    fed.InjectShardFailure(0);
    fed.RunEpoch();
    fed.RunEpoch();  // Quarantined epoch: ring records the sit-out.
    const Telemetry* telemetry = fed.telemetry();
    return std::vector<std::string>{telemetry->MetricsJson(),
                                    telemetry->TraceJson(),
                                    telemetry->PrometheusText()};
  };
  const std::vector<std::string> serial = run(0);
  const std::vector<std::string> serial_again = run(0);
  const std::vector<std::string> threaded = run(4);
  EXPECT_EQ(serial, serial_again);
  EXPECT_EQ(serial, threaded);
  EXPECT_NE(serial[1].find("flight recorder"), std::string::npos);
}

// ------------------------------------------------------- off means off --

TEST(TelemetryGateTest, DisabledPlaneLeavesMarketOutcomesBitIdentical) {
  const auto run = [](bool telemetry) {
    federation::FederationConfig config;
    config.supervisor.enabled = true;
    config.telemetry.enabled = telemetry;
    federation::FederatedExchange fed(TwoShards(), config);
    fed.EndowFederatedTeam("globex", Money::FromDollars(100000));
    fed.SubmitFederatedBid(HomeBid("alpha"));
    fed.RunEpoch();
    return fed.RunEpoch();
  };
  const federation::FederationReport with = run(true);
  const federation::FederationReport without = run(false);
  ASSERT_EQ(with.shards.size(), without.shards.size());
  for (std::size_t k = 0; k < with.shards.size(); ++k) {
    const exchange::AuctionReport& a = with.shards[k].report;
    const exchange::AuctionReport& b = without.shards[k].report;
    EXPECT_EQ(a.num_bids, b.num_bids);
    EXPECT_EQ(a.num_winners, b.num_winners);
    EXPECT_EQ(a.rounds, b.rounds);
    EXPECT_EQ(a.operator_revenue, b.operator_revenue);
    EXPECT_EQ(a.settled_prices, b.settled_prices);
    ASSERT_EQ(a.awards.size(), b.awards.size());
    for (std::size_t i = 0; i < a.awards.size(); ++i) {
      EXPECT_EQ(a.awards[i].bid_name, b.awards[i].bid_name);
      EXPECT_EQ(a.awards[i].payment, b.awards[i].payment);
    }
  }
  EXPECT_EQ(with.routed.size(), without.routed.size());
}

// -------------------------------------------- scenario registry property --

TEST(TelemetryScenarioPropertyTest, OffIsBitIdenticalOnEveryScenario) {
  // Property over the whole scenario registry: arming the telemetry
  // plane never changes a scenario's deterministic metrics document.
  for (const std::string& name : scenario::ScenarioNames()) {
    const auto run = [&](bool telemetry) {
      scenario::ScenarioSpec spec = scenario::FindScenario(name);
      spec.federation.telemetry.enabled = telemetry;
      scenario::RunnerConfig config;
      config.epochs = 2;
      scenario::ScenarioRunner runner(std::move(spec), config);
      return runner.Run().ToJson();
    };
    EXPECT_EQ(run(false), run(true)) << "scenario " << name;
  }
}

TEST(TelemetryScenarioPropertyTest, ExportsThreadInvariantOnEveryScenario) {
  // And the armed plane's own exports are byte-identical across thread
  // counts on every registered scenario.
  for (const std::string& name : scenario::ScenarioNames()) {
    const auto run = [&](std::size_t threads) {
      scenario::ScenarioSpec spec = scenario::FindScenario(name);
      spec.federation.telemetry.enabled = true;
      scenario::RunnerConfig config;
      config.epochs = 2;
      config.num_threads = threads;
      scenario::ScenarioRunner runner(std::move(spec), config);
      runner.Run();
      const Telemetry* telemetry = runner.exchange().telemetry();
      return std::vector<std::string>{telemetry->MetricsJson(),
                                      telemetry->TraceJson()};
    };
    EXPECT_EQ(run(0), run(2)) << "scenario " << name;
  }
}

// ------------------------------------------------------- counter wiring --

TEST(TelemetryCountersTest, EngineAndRouterCountersLand) {
  federation::FederationConfig config;
  config.telemetry.enabled = true;
  federation::FederatedExchange fed(TwoShards(), config);
  fed.EndowFederatedTeam("globex", Money::FromDollars(100000));
  fed.SubmitFederatedBid(HomeBid(""));  // Cheapest-price policy default.
  fed.RunEpoch();
  const MetricsRegistry& reg = fed.telemetry()->registry();
  double rounds = 0.0;
  double evals = 0.0;
  double collections = 0.0;
  for (const char* shard : {"alpha", "beta"}) {
    Labels by_shard{shard, "", ""};
    rounds += reg.CounterValue("fed_auction_rounds", by_shard);
    evals += reg.CounterValue("fed_demand_evaluations", by_shard);
    Labels by_phase{shard, "", "full"};
    collections += reg.CounterValue("fed_engine_collections", by_phase);
    by_phase.phase = "incremental";
    collections += reg.CounterValue("fed_engine_collections", by_phase);
  }
  EXPECT_GT(rounds, 0.0);
  EXPECT_GT(evals, 0.0);
  // Every auction's demand collections are phase-split into full sweeps
  // plus incremental passes; at least the two round-0 sweeps must show.
  EXPECT_GE(collections, 2.0);
  EXPECT_GT(
      reg.CounterValue("fed_router_parts_placed", Labels{}), 0.0);
  EXPECT_EQ(reg.NumEpochs(), 1u);
  // The clearing-price histogram exists for at least one kind.
  EXPECT_NE(reg.FindHistogram("fed_clearing_price",
                              Labels{"alpha", "cpu", ""}),
            nullptr);
}

}  // namespace
}  // namespace pm::telemetry
