// Tests for the outcome-aware settlement pipeline: pool-level fill
// intents on auction awards, PlacementOutcomes on every AwardRecord, the
// gated pro-rata refund for unplaced units, §V.B move pricing, and the
// external-rejection reasons the federation routing layer asserts on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "agents/workload_gen.h"
#include "auction/clock_auction.h"
#include "auction/settlement.h"
#include "common/check.h"
#include "exchange/market.h"
#include "exchange/settlement_pipeline.h"

namespace pm::exchange {
namespace {

agents::WorkloadConfig SmallWorldConfig() {
  agents::WorkloadConfig config;
  config.num_clusters = 6;
  config.num_teams = 24;
  config.min_machines_per_cluster = 15;
  config.max_machines_per_cluster = 30;
  config.seed = 31;
  return config;
}

MarketConfig FastMarketConfig() {
  MarketConfig config;
  config.auction.alpha = 0.4;
  config.auction.delta = 0.08;
  config.auction.max_rounds = 30000;
  return config;
}

/// The cluster with the most free CPU, plus that cluster's largest
/// single-machine CPU headroom (the bin-packing bound).
struct SpaciousCluster {
  std::string name;
  double free_cpu = 0.0;
  double max_machine_free_cpu = 0.0;
};

SpaciousCluster MostSpaciousCluster(const cluster::Fleet& fleet) {
  SpaciousCluster best;
  for (const std::string& name : fleet.ClusterNames()) {
    const double free = fleet.FreeShape(name).cpu;
    if (free <= best.free_cpu) continue;
    best.name = name;
    best.free_cpu = free;
    best.max_machine_free_cpu = 0.0;
    for (const cluster::Machine& machine :
         fleet.ClusterByName(name).machines()) {
      best.max_machine_free_cpu =
          std::max(best.max_machine_free_cpu, machine.Free().cpu);
    }
  }
  return best;
}

// ------------------------------------------------- auction fill intents --

TEST(SettlementTest, AwardsCarryAggregatedPoolFillIntents) {
  // One generous buy bundle listing pool 0 twice: intents aggregate.
  bid::Bid b;
  b.name = "dup";
  b.bundles = {bid::Bundle({bid::BundleItem{0, 2.0}, bid::BundleItem{0, 1.0},
                            bid::BundleItem{1, 4.0}})};
  b.limit = 1000.0;
  std::vector<bid::Bid> bids{b};
  bid::AssignUserIds(bids);
  auction::ClockAuction auction(std::move(bids), {10.0, 10.0}, {1.0, 1.0});
  const auction::ClockAuctionResult result =
      auction.Run(auction::ClockAuctionConfig{});
  ASSERT_TRUE(result.converged);
  const auction::Settlement s = auction::Settle(auction, result);
  ASSERT_EQ(s.awards.size(), 1u);
  ASSERT_EQ(s.awards[0].intents.size(), 2u);
  EXPECT_EQ(s.awards[0].intents[0].pool, 0u);
  EXPECT_DOUBLE_EQ(s.awards[0].intents[0].qty, 3.0);
  EXPECT_EQ(s.awards[0].intents[1].pool, 1u);
  EXPECT_DOUBLE_EQ(s.awards[0].intents[1].qty, 4.0);
}

// ------------------------------------------------- outcomes on awards --

TEST(SettlementPipelineTest, EveryAwardCarriesAConsistentOutcome) {
  agents::World world = GenerateWorld(SmallWorldConfig());
  Market market(&world.fleet, &world.agents, world.fixed_prices,
                FastMarketConfig());
  for (int round = 0; round < 2; ++round) {
    const AuctionReport report = market.RunAuction();
    ASSERT_EQ(report.awards.size(), report.num_winners);
    double refund_total = 0.0;
    for (const AwardRecord& award : report.awards) {
      const PlacementOutcome& outcome = award.outcome;
      double awarded = 0.0;
      double placed = 0.0;
      for (const PoolFill& fill : outcome.fills) {
        EXPECT_GT(fill.awarded, 0.0);
        EXPECT_GE(fill.placed, 0.0);
        EXPECT_LE(fill.placed, fill.awarded + 1e-9);
        awarded += fill.awarded;
        placed += fill.placed;
      }
      EXPECT_NEAR(outcome.awarded_units, awarded, 1e-9);
      EXPECT_NEAR(outcome.placed_units, placed, 1e-9);
      // The refund gate is off: nothing was refunded, and the status
      // matches the fill arithmetic.
      EXPECT_EQ(outcome.refunded_units, 0.0);
      EXPECT_EQ(outcome.refund, 0.0);
      if (outcome.quota_only || outcome.awarded_units == 0.0) {
        EXPECT_EQ(outcome.status, PlacementOutcome::Status::kPlaced);
      } else if (outcome.placed_units <= 0.0) {
        EXPECT_EQ(outcome.status, PlacementOutcome::Status::kFailed);
      } else if (outcome.placed_units < outcome.awarded_units * (1 - 1e-12)) {
        EXPECT_EQ(outcome.status, PlacementOutcome::Status::kPartial);
      } else {
        EXPECT_EQ(outcome.status, PlacementOutcome::Status::kPlaced);
      }
      refund_total += outcome.refund;
    }
    EXPECT_EQ(report.refund_total, refund_total);
  }
}

// ---------------------------------------------------- refunds (gated) --

TEST(SettlementPipelineTest, PartialPlacementRefundsUnplacedProRata) {
  agents::World world = GenerateWorld(SmallWorldConfig());
  MarketConfig config = FastMarketConfig();
  // No task splitting: a bought delta materializes as ONE task, so a buy
  // larger than every machine's headroom is guaranteed to fail
  // bin-packing even though the pool-level supply covers it.
  config.max_task_shape = cluster::TaskShape{1e9, 1e9, 1e9};
  config.settlement.refund_unplaced = true;
  config.settlement.move_cost_weights = cluster::TaskShape{2.0, 0.5, 10.0};
  Market market(&world.fleet, &world.agents, world.fixed_prices, config);

  const SpaciousCluster big = MostSpaciousCluster(world.fleet);
  // Bigger than twice the largest machine headroom (the pipeline retries
  // once at half task size), comfortably inside the pool supply.
  const double qty_fail =
      std::min(0.9 * big.free_cpu, 2.5 * big.max_machine_free_cpu);
  ASSERT_GT(qty_fail, 2.0 * big.max_machine_free_cpu)
      << "fixture must exceed the bin-packing retry bound";
  // A small second part in another cluster that places trivially.
  std::string other;
  for (const std::string& name : world.fleet.ClusterNames()) {
    if (name != big.name && world.fleet.FreeShape(name).cpu > 4.0) {
      other = name;
    }
  }
  ASSERT_FALSE(other.empty());
  const PoolRegistry& registry = world.fleet.registry();
  const PoolId pool_fail =
      *registry.Find(PoolKey{big.name, ResourceKind::kCpu});
  const PoolId pool_ok =
      *registry.Find(PoolKey{other, ResourceKind::kCpu});

  market.EndowTeam("buyer", Money::FromDollars(10000000), "test");
  bid::Bid bid;
  bid.name = "fed/buyer/part";
  bid.bundles = {bid::Bundle({bid::BundleItem{pool_fail, qty_fail},
                              bid::BundleItem{pool_ok, 2.0}})};
  bid.limit = 5000000.0;
  market.SubmitExternalBid(Market::ExternalBid{"buyer", bid});

  const AuctionReport report = market.RunAuction();
  const AwardRecord* award = nullptr;
  for (const AwardRecord& a : report.awards) {
    if (a.team == "buyer") award = &a;
  }
  ASSERT_NE(award, nullptr) << "generous uncontested buy must win";

  const PlacementOutcome& outcome = award->outcome;
  EXPECT_EQ(outcome.status, PlacementOutcome::Status::kPartial);
  ASSERT_EQ(outcome.fills.size(), 2u);
  double refund_value = 0.0;
  for (const PoolFill& fill : outcome.fills) {
    if (fill.pool == pool_fail) {
      EXPECT_DOUBLE_EQ(fill.awarded, qty_fail);
      EXPECT_EQ(fill.placed, 0.0);
      refund_value += fill.awarded * report.settled_prices[fill.pool];
    } else {
      EXPECT_EQ(fill.pool, pool_ok);
      EXPECT_DOUBLE_EQ(fill.placed, fill.awarded);
    }
  }
  EXPECT_NEAR(outcome.refunded_units, qty_fail, 1e-9);
  EXPECT_DOUBLE_EQ(outcome.refund,
                   Money::FromDollarsRounded(refund_value).ToDouble());
  EXPECT_GE(report.partial_placements, 1u);
  EXPECT_GE(report.refund_total, outcome.refund);

  // The unplaced entitlement was handed back with the money; the placed
  // part keeps its.
  EXPECT_EQ(market.quota().EntitlementOf("buyer", pool_fail), 0.0);
  EXPECT_DOUBLE_EQ(market.quota().EntitlementOf("buyer", pool_ok), 2.0);
  bool journaled = false;
  for (const JournalEntry& entry : market.ledger().Journal()) {
    journaled = journaled ||
                entry.memo == "refund unplaced: fed/buyer/part";
  }
  EXPECT_TRUE(journaled);

  // The buyer's executed move (the placed part) is priced with the
  // configured §V.B weights.
  bool priced_move = false;
  for (const MoveRecord& move : report.moves) {
    EXPECT_NEAR(move.reconfig_cost,
                cluster::Dot(move.amount, config.settlement.move_cost_weights),
                1e-9);
    priced_move = priced_move || (move.team == "buyer" &&
                                  move.reconfig_cost > 0.0);
  }
  EXPECT_TRUE(priced_move);
}

TEST(SettlementPipelineTest, FullPlacementFailureRefundsThePayment) {
  agents::World world = GenerateWorld(SmallWorldConfig());
  MarketConfig config = FastMarketConfig();
  config.max_task_shape = cluster::TaskShape{1e9, 1e9, 1e9};
  config.settlement.refund_unplaced = true;
  Market market(&world.fleet, &world.agents, world.fixed_prices, config);

  const SpaciousCluster big = MostSpaciousCluster(world.fleet);
  const double qty_fail =
      std::min(0.9 * big.free_cpu, 2.5 * big.max_machine_free_cpu);
  ASSERT_GT(qty_fail, 2.0 * big.max_machine_free_cpu);
  const PoolId pool_fail = *world.fleet.registry().Find(
      PoolKey{big.name, ResourceKind::kCpu});

  const Money endowed = Money::FromDollars(10000000);
  market.EndowTeam("buyer", endowed, "test");
  bid::Bid bid;
  bid.name = "fed/buyer/doomed";
  bid.bundles = {bid::Bundle({bid::BundleItem{pool_fail, qty_fail}})};
  bid.limit = 5000000.0;
  market.SubmitExternalBid(Market::ExternalBid{"buyer", bid});

  const AuctionReport report = market.RunAuction();
  const AwardRecord* award = nullptr;
  for (const AwardRecord& a : report.awards) {
    if (a.team == "buyer") award = &a;
  }
  ASSERT_NE(award, nullptr);
  EXPECT_EQ(award->outcome.status, PlacementOutcome::Status::kFailed);
  // Refund == payment (both are qty × settled price, rounded once), so
  // the failed buy nets to zero: the award was worth what was delivered.
  EXPECT_EQ(market.TeamBudget("buyer"), endowed);
  EXPECT_EQ(market.quota().EntitlementOf("buyer", pool_fail), 0.0);
}

TEST(SettlementPipelineTest, MixedSignItemsNetBeforeRefundAccounting) {
  // Bundle construction is canonical: a buy and a sell item on the same
  // pool merge to their net before the auction ever sees them, so the
  // quota grant, the payment, the fill intents, and therefore a failed
  // placement's refund all cover exactly the net quantity — the team
  // cannot profit from failing.
  agents::World world = GenerateWorld(SmallWorldConfig());
  MarketConfig config = FastMarketConfig();
  config.max_task_shape = cluster::TaskShape{1e9, 1e9, 1e9};
  config.settlement.refund_unplaced = true;
  Market market(&world.fleet, &world.agents, world.fixed_prices, config);

  const SpaciousCluster big = MostSpaciousCluster(world.fleet);
  const double qty = std::min(0.9 * big.free_cpu / 0.9,
                              2.5 * big.max_machine_free_cpu);
  // The NET quantity must still exceed the bin-packing retry bound.
  ASSERT_GT(0.9 * qty, 2.0 * big.max_machine_free_cpu);
  const PoolId pool_fail = *world.fleet.registry().Find(
      PoolKey{big.name, ResourceKind::kCpu});

  const Money endowed = Money::FromDollars(10000000);
  market.EndowTeam("buyer", endowed, "test");
  bid::Bid bid;
  bid.name = "fed/buyer/mixed";
  bid.bundles = {bid::Bundle({bid::BundleItem{pool_fail, qty},
                              bid::BundleItem{pool_fail, -0.1 * qty}})};
  bid.limit = 5000000.0;
  market.SubmitExternalBid(Market::ExternalBid{"buyer", bid});

  const AuctionReport report = market.RunAuction();
  const AwardRecord* award = nullptr;
  for (const AwardRecord& a : report.awards) {
    if (a.team == "buyer") award = &a;
  }
  ASSERT_NE(award, nullptr);
  EXPECT_EQ(award->outcome.status, PlacementOutcome::Status::kFailed);
  ASSERT_EQ(award->outcome.fills.size(), 1u);
  EXPECT_NEAR(award->outcome.fills[0].awarded, 0.9 * qty, 1e-9);
  EXPECT_NEAR(award->outcome.refunded_units, 0.9 * qty, 1e-9);
  // Refund == net payment: the failed award nets to zero, no more, and
  // no entitlement survives.
  EXPECT_EQ(market.TeamBudget("buyer"), endowed);
  EXPECT_EQ(market.quota().EntitlementOf("buyer", pool_fail), 0.0);
}

TEST(SettlementPipelineTest, LegacyGateOffKeepsQuotaAndMoney) {
  agents::World world = GenerateWorld(SmallWorldConfig());
  MarketConfig config = FastMarketConfig();
  config.max_task_shape = cluster::TaskShape{1e9, 1e9, 1e9};
  // refund_unplaced left at the default (off).
  Market market(&world.fleet, &world.agents, world.fixed_prices, config);

  const SpaciousCluster big = MostSpaciousCluster(world.fleet);
  const double qty_fail =
      std::min(0.9 * big.free_cpu, 2.5 * big.max_machine_free_cpu);
  ASSERT_GT(qty_fail, 2.0 * big.max_machine_free_cpu);
  const PoolId pool_fail = *world.fleet.registry().Find(
      PoolKey{big.name, ResourceKind::kCpu});

  const Money endowed = Money::FromDollars(10000000);
  market.EndowTeam("buyer", endowed, "test");
  bid::Bid bid;
  bid.name = "fed/buyer/doomed";
  bid.bundles = {bid::Bundle({bid::BundleItem{pool_fail, qty_fail}})};
  bid.limit = 5000000.0;
  market.SubmitExternalBid(Market::ExternalBid{"buyer", bid});

  const AuctionReport report = market.RunAuction();
  const AwardRecord* award = nullptr;
  for (const AwardRecord& a : report.awards) {
    if (a.team == "buyer") award = &a;
  }
  ASSERT_NE(award, nullptr);
  // The outcome is still recorded (kFailed) but nothing moved back:
  // quota-only entitlement and the charge both stand — the legacy path.
  EXPECT_EQ(award->outcome.status, PlacementOutcome::Status::kFailed);
  EXPECT_EQ(award->outcome.refund, 0.0);
  EXPECT_EQ(award->outcome.refunded_units, 0.0);
  EXPECT_DOUBLE_EQ(market.quota().EntitlementOf("buyer", pool_fail),
                   qty_fail);
  EXPECT_LT(market.TeamBudget("buyer"), endowed);
  EXPECT_EQ(report.refund_total, 0.0);
}

// ------------------------------------------ outcome feedback (gated) --

TEST(SettlementPipelineTest, OutcomeFeedbackGatePopulatesAgentMemory) {
  // Monolithic task shapes make organic resident placement failures
  // likely. With the gate off the agents' placement memory must stay
  // untouched (the bit-identical contract: no BidOutcome carries
  // placement fields, so ObserveOutcome never resizes the memory); with
  // the gate on, the same world accumulates nonzero penalties.
  const auto run = [](bool feedback) {
    agents::World world = GenerateWorld(SmallWorldConfig());
    MarketConfig config = FastMarketConfig();
    config.max_task_shape = cluster::TaskShape{1e9, 1e9, 1e9};
    config.outcome_feedback = feedback;
    Market market(&world.fleet, &world.agents, world.fixed_prices,
                  config);
    std::size_t failures = 0;
    for (int round = 0; round < 3; ++round) {
      failures += market.RunAuction().placement_failures;
    }
    bool any_memory = false;
    double total_penalty = 0.0;
    for (const agents::TeamAgent& agent : world.agents) {
      any_memory = any_memory || !agent.placement_penalty().empty();
      for (double p : agent.placement_penalty()) total_penalty += p;
    }
    return std::tuple{failures, any_memory, total_penalty};
  };
  const auto [off_failures, off_memory, off_penalty] = run(false);
  EXPECT_GT(off_failures, 0u) << "fixture must force failures";
  EXPECT_FALSE(off_memory);
  EXPECT_EQ(off_penalty, 0.0);
  const auto [on_failures, on_memory, on_penalty] = run(true);
  EXPECT_GT(on_failures, 0u);
  EXPECT_TRUE(on_memory);
  EXPECT_GT(on_penalty, 0.0);
}

// ---------------------------------------------- move billing (gated) --

/// A cluster with at least `min_free_cpu` of single-machine headroom (so
/// a small single-task buy is guaranteed to place).
std::string RoomyCluster(const cluster::Fleet& fleet, double min_free_cpu) {
  for (const std::string& name : fleet.ClusterNames()) {
    for (const cluster::Machine& machine :
         fleet.ClusterByName(name).machines()) {
      if (machine.Free().cpu >= min_free_cpu &&
          machine.Free().ram_gb >= 1.0) {
        return name;
      }
    }
  }
  return "";
}

TEST(SettlementPipelineTest, BilledMovesChargeTheMovingTeam) {
  agents::World world = GenerateWorld(SmallWorldConfig());
  MarketConfig config = FastMarketConfig();
  config.settlement.move_cost_weights = cluster::TaskShape{2.0, 0.5, 10.0};
  config.settlement.bill_moves = true;
  Market market(&world.fleet, &world.agents, world.fixed_prices, config);

  const std::string roomy = RoomyCluster(world.fleet, 8.0);
  ASSERT_FALSE(roomy.empty());
  const PoolId pool =
      *world.fleet.registry().Find(PoolKey{roomy, ResourceKind::kCpu});

  const Money endowed = Money::FromDollars(10000000);
  market.EndowTeam("buyer", endowed, "test");
  bid::Bid bid;
  bid.name = "fed/buyer/grow";
  bid.bundles = {bid::Bundle({bid::BundleItem{pool, 4.0}})};
  bid.limit = 5000000.0;
  market.SubmitExternalBid(Market::ExternalBid{"buyer", bid});

  const AuctionReport report = market.RunAuction();
  const AwardRecord* award = nullptr;
  for (const AwardRecord& a : report.awards) {
    if (a.team == "buyer") award = &a;
  }
  ASSERT_NE(award, nullptr);
  ASSERT_EQ(award->outcome.status, PlacementOutcome::Status::kPlaced);

  const MoveRecord* move = nullptr;
  for (const MoveRecord& m : report.moves) {
    if (m.team == "buyer") move = &m;
  }
  ASSERT_NE(move, nullptr);
  EXPECT_NEAR(move->reconfig_cost, 4.0 * 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(
      move->billed,
      Money::FromDollarsRounded(move->reconfig_cost).ToDouble());
  EXPECT_GE(report.move_billing_total, move->billed);
  // The charge landed: budget is endowment minus the auction payment
  // minus the bill, to the micro-dollar.
  EXPECT_EQ(market.TeamBudget("buyer"),
            endowed - Money::FromDollarsRounded(award->payment) -
                Money::FromDollarsRounded(move->reconfig_cost));
  bool journaled = false;
  for (const JournalEntry& entry : market.ledger().Journal()) {
    journaled = journaled || entry.memo == "move reconfig: fed/buyer/grow";
  }
  EXPECT_TRUE(journaled);
}

TEST(SettlementPipelineTest, MoveBillingClampsToRemainingBalance) {
  agents::World world = GenerateWorld(SmallWorldConfig());
  MarketConfig config = FastMarketConfig();
  // Absurd weights: the bill vastly exceeds any budget, so the clamp —
  // not an overdraft — must resolve it.
  config.settlement.move_cost_weights = cluster::TaskShape{1e6, 0.0, 0.0};
  config.settlement.bill_moves = true;
  Market market(&world.fleet, &world.agents, world.fixed_prices, config);

  const std::string roomy = RoomyCluster(world.fleet, 8.0);
  ASSERT_FALSE(roomy.empty());
  const PoolId pool =
      *world.fleet.registry().Find(PoolKey{roomy, ResourceKind::kCpu});

  const Money endowed = Money::FromDollars(100000);
  market.EndowTeam("buyer", endowed, "test");
  bid::Bid bid;
  bid.name = "fed/buyer/grow";
  bid.bundles = {bid::Bundle({bid::BundleItem{pool, 4.0}})};
  bid.limit = 50000.0;
  market.SubmitExternalBid(Market::ExternalBid{"buyer", bid});

  const AuctionReport report = market.RunAuction();
  const AwardRecord* award = nullptr;
  const MoveRecord* move = nullptr;
  for (const AwardRecord& a : report.awards) {
    if (a.team == "buyer") award = &a;
  }
  for (const MoveRecord& m : report.moves) {
    if (m.team == "buyer") move = &m;
  }
  ASSERT_NE(award, nullptr);
  ASSERT_NE(move, nullptr);
  // The bill took everything that was left after the auction payment —
  // and only that: no overdraft, no negative balance.
  const Money remaining =
      endowed - Money::FromDollarsRounded(award->payment);
  EXPECT_DOUBLE_EQ(move->billed, remaining.ToDouble());
  EXPECT_LT(move->billed, move->reconfig_cost);
  EXPECT_TRUE(market.TeamBudget("buyer").IsZero());
}

TEST(SettlementPipelineTest, FailedPlacementIsNeverBilledForTheMove) {
  // A bounced placement reconfigured nothing: with bill_moves AND
  // refund_unplaced on, the failed buy must net to exactly zero — the
  // auction payment comes back as a refund and no reconfiguration bill
  // is taken on top.
  agents::World world = GenerateWorld(SmallWorldConfig());
  MarketConfig config = FastMarketConfig();
  config.max_task_shape = cluster::TaskShape{1e9, 1e9, 1e9};
  config.settlement.refund_unplaced = true;
  config.settlement.move_cost_weights = cluster::TaskShape{2.0, 0.5, 10.0};
  config.settlement.bill_moves = true;
  Market market(&world.fleet, &world.agents, world.fixed_prices, config);

  const SpaciousCluster big = MostSpaciousCluster(world.fleet);
  const double qty_fail =
      std::min(0.9 * big.free_cpu, 2.5 * big.max_machine_free_cpu);
  ASSERT_GT(qty_fail, 2.0 * big.max_machine_free_cpu);
  const PoolId pool_fail = *world.fleet.registry().Find(
      PoolKey{big.name, ResourceKind::kCpu});

  const Money endowed = Money::FromDollars(10000000);
  market.EndowTeam("buyer", endowed, "test");
  bid::Bid bid;
  bid.name = "fed/buyer/doomed";
  bid.bundles = {bid::Bundle({bid::BundleItem{pool_fail, qty_fail}})};
  bid.limit = 5000000.0;
  market.SubmitExternalBid(Market::ExternalBid{"buyer", bid});

  const AuctionReport report = market.RunAuction();
  const AwardRecord* award = nullptr;
  for (const AwardRecord& a : report.awards) {
    if (a.team == "buyer") award = &a;
  }
  ASSERT_NE(award, nullptr);
  ASSERT_EQ(award->outcome.status, PlacementOutcome::Status::kFailed);
  for (const MoveRecord& move : report.moves) {
    if (move.team != "buyer") continue;
    EXPECT_GT(move.reconfig_cost, 0.0);  // Recorded over the award...
    EXPECT_EQ(move.billed, 0.0);         // ...but nothing landed: no bill.
  }
  EXPECT_EQ(market.TeamBudget("buyer"), endowed);
}

TEST(SettlementPipelineTest, MoveBillingGateOffRecordsCostOnly) {
  agents::World world = GenerateWorld(SmallWorldConfig());
  MarketConfig config = FastMarketConfig();
  config.settlement.move_cost_weights = cluster::TaskShape{2.0, 0.5, 10.0};
  // bill_moves left at the default (off).
  Market market(&world.fleet, &world.agents, world.fixed_prices, config);

  const std::string roomy = RoomyCluster(world.fleet, 8.0);
  ASSERT_FALSE(roomy.empty());
  const PoolId pool =
      *world.fleet.registry().Find(PoolKey{roomy, ResourceKind::kCpu});

  const Money endowed = Money::FromDollars(10000000);
  market.EndowTeam("buyer", endowed, "test");
  bid::Bid bid;
  bid.name = "fed/buyer/grow";
  bid.bundles = {bid::Bundle({bid::BundleItem{pool, 4.0}})};
  bid.limit = 5000000.0;
  market.SubmitExternalBid(Market::ExternalBid{"buyer", bid});

  const AuctionReport report = market.RunAuction();
  const AwardRecord* award = nullptr;
  const MoveRecord* move = nullptr;
  for (const AwardRecord& a : report.awards) {
    if (a.team == "buyer") award = &a;
  }
  for (const MoveRecord& m : report.moves) {
    if (m.team == "buyer") move = &m;
  }
  ASSERT_NE(award, nullptr);
  ASSERT_NE(move, nullptr);
  EXPECT_GT(move->reconfig_cost, 0.0);  // Priced...
  EXPECT_EQ(move->billed, 0.0);         // ...but never billed.
  EXPECT_EQ(report.move_billing_total, 0.0);
  EXPECT_EQ(market.TeamBudget("buyer"),
            endowed - Money::FromDollarsRounded(award->payment));
}

// ------------------------------------------------- rejection reasons --

TEST(SettlementPipelineTest, ExternalRejectionsCarryTheirReason) {
  agents::World world = GenerateWorld(SmallWorldConfig());
  Market market(&world.fleet, &world.agents, world.fixed_prices,
                FastMarketConfig());
  // Unfunded buy: valid as submitted, starved by the budget clamp.
  bid::Bid broke;
  broke.name = "fed/ghost/unfunded";
  broke.bundles = {bid::Bundle({bid::BundleItem{0, 4.0}})};
  broke.limit = 1000.0;
  market.SubmitExternalBid(Market::ExternalBid{"ghost", broke});
  // Malformed: references a pool outside the registry; the team has
  // money, so budget is not the reason.
  market.EndowTeam("clumsy", Money::FromDollars(1000), "test");
  bid::Bid malformed;
  malformed.name = "fed/clumsy/outside";
  malformed.bundles = {bid::Bundle({bid::BundleItem{PoolId{100000}, 1.0}})};
  malformed.limit = 500.0;
  market.SubmitExternalBid(Market::ExternalBid{"clumsy", malformed});

  const AuctionReport report = market.RunAuction();
  ASSERT_EQ(report.external_rejected, 2u);
  ASSERT_EQ(report.external_rejections.size(), 2u);
  EXPECT_EQ(report.external_rejections[0].team, "ghost");
  EXPECT_EQ(report.external_rejections[0].bid_name, "fed/ghost/unfunded");
  EXPECT_EQ(report.external_rejections[0].reason,
            ExternalRejection::Reason::kBudget);
  EXPECT_EQ(report.external_rejections[1].team, "clumsy");
  EXPECT_EQ(report.external_rejections[1].reason,
            ExternalRejection::Reason::kValidation);
  EXPECT_EQ(ToString(ExternalRejection::Reason::kBudget), "budget");
  EXPECT_EQ(ToString(ExternalRejection::Reason::kValidation), "validation");
}

// --------------------------------------------- failure-rate windowing --

TEST(ReportTest, RecentPlacementFailureRateWindowsOverHistory) {
  std::vector<AuctionReport> history;
  const auto report_with = [](double awarded, double placed) {
    AuctionReport report;
    AwardRecord award;
    award.outcome.awarded_units = awarded;
    award.outcome.placed_units = placed;
    report.awards.push_back(std::move(award));
    return report;
  };
  EXPECT_EQ(RecentPlacementFailureRate(history, 3), 0.0);
  history.push_back(report_with(10.0, 0.0));   // Epoch 0: all failed.
  EXPECT_DOUBLE_EQ(RecentPlacementFailureRate(history, 3), 1.0);
  history.push_back(report_with(10.0, 10.0));  // Epoch 1: all placed.
  history.push_back(report_with(10.0, 5.0));   // Epoch 2: half.
  EXPECT_DOUBLE_EQ(RecentPlacementFailureRate(history, 3), 0.5);
  // The window slides: epoch 0's disaster ages out.
  history.push_back(report_with(10.0, 10.0));  // Epoch 3.
  EXPECT_DOUBLE_EQ(RecentPlacementFailureRate(history, 3), 5.0 / 30.0);
  EXPECT_DOUBLE_EQ(RecentPlacementFailureRate(history, 1), 0.0);
  // Quota-only awards never count against a shard.
  AuctionReport quota_only;
  AwardRecord warehouse;
  warehouse.outcome.quota_only = true;
  warehouse.outcome.awarded_units = 100.0;
  warehouse.outcome.placed_units = 100.0;
  quota_only.awards.push_back(std::move(warehouse));
  history.assign(1, std::move(quota_only));
  EXPECT_EQ(RecentPlacementFailureRate(history, 3), 0.0);
}

}  // namespace
}  // namespace pm::exchange
