// Tests for the paper's stated extensions, implemented in this repo:
//  * vector π — per-bundle limits (§II: "Extending the model to allow
//    for vector π's ... does not significantly change our results")
//  * price ceilings p ≤ pmax (§III.B's bounded-price modification)
//  * operator decision support — capacity advice from price signals
//    (§III.A / §IV)
#include <gtest/gtest.h>

#include "auction/clock_auction.h"
#include "auction/greedy.h"
#include "auction/settlement.h"
#include "auction/system_check.h"
#include "auction/wdp_exact.h"
#include "common/check.h"
#include "exchange/capacity_advice.h"

namespace pm {
namespace {

using auction::ClockAuction;
using auction::ClockAuctionConfig;
using auction::ClockAuctionResult;
using bid::Bid;
using bid::Bundle;
using bid::BundleItem;

Bid VectorBid(UserId user, std::vector<Bundle> bundles,
              std::vector<double> limits) {
  Bid b;
  b.user = user;
  b.name = "v" + std::to_string(user);
  b.bundles = std::move(bundles);
  b.bundle_limits = std::move(limits);
  return b;
}

ClockAuctionConfig FastConfig() {
  ClockAuctionConfig config;
  config.alpha = 0.5;
  config.delta = 0.10;
  config.step_floor = 0.01;
  return config;
}

// ---------------------------------------------------------- vector limits --

TEST(VectorLimitsTest, LimitForSelectsPerBundle) {
  const Bid b = VectorBid(0, {Bundle({{0, 1.0}}), Bundle({{1, 1.0}})},
                          {10.0, 20.0});
  EXPECT_TRUE(b.HasVectorLimits());
  EXPECT_DOUBLE_EQ(b.LimitFor(0), 10.0);
  EXPECT_DOUBLE_EQ(b.LimitFor(1), 20.0);
  EXPECT_THROW(b.LimitFor(2), CheckFailure);
}

TEST(VectorLimitsTest, ScalarBidFallsBackToLimit) {
  Bid b;
  b.bundles = {Bundle({{0, 1.0}})};
  b.limit = 7.0;
  EXPECT_FALSE(b.HasVectorLimits());
  EXPECT_DOUBLE_EQ(b.LimitFor(0), 7.0);
}

TEST(VectorLimitsTest, ValidationChecksArity) {
  Bid b = VectorBid(0, {Bundle({{0, 1.0}}), Bundle({{1, 1.0}})}, {5.0});
  EXPECT_NE(ValidateBid(b, 2), "");
  b.bundle_limits = {5.0, 6.0};
  EXPECT_EQ(ValidateBid(b, 2), "");
}

TEST(VectorLimitsTest, ValidationRejectsNonFiniteEntries) {
  Bid b = VectorBid(
      0, {Bundle({{0, 1.0}})},
      {std::numeric_limits<double>::infinity()});
  EXPECT_NE(ValidateBid(b, 1), "");
}

TEST(VectorLimitsTest, BuyerNeedsOnePositiveLimit) {
  Bid b = VectorBid(0, {Bundle({{0, 1.0}}), Bundle({{1, 1.0}})},
                    {-1.0, 0.0});
  EXPECT_NE(ValidateBid(b, 2), "");
  b.bundle_limits = {-1.0, 3.0};  // One attainable alternative suffices.
  EXPECT_EQ(ValidateBid(b, 2), "");
}

TEST(VectorLimitsTest, ProxyPrefersCheapestAffordable) {
  // Bundle 0 is cheaper but its limit is tight; bundle 1 affordable.
  const Bid b = VectorBid(0, {Bundle({{0, 1.0}}), Bundle({{1, 1.0}})},
                          {2.0, 50.0});
  auction::BidderProxy proxy(&b);
  const std::vector<double> prices = {3.0, 10.0};
  const auction::ProxyDecision d = proxy.Evaluate(prices);
  ASSERT_TRUE(d.Active());
  EXPECT_EQ(d.bundle_index, 1);  // Pool 0 costs 3 > limit 2.
  EXPECT_DOUBLE_EQ(d.cost, 10.0);
}

TEST(VectorLimitsTest, ProxyDropsOutWhenNothingAffordable) {
  const Bid b = VectorBid(0, {Bundle({{0, 1.0}}), Bundle({{1, 1.0}})},
                          {2.0, 4.0});
  auction::BidderProxy proxy(&b);
  const std::vector<double> prices = {5.0, 6.0};
  EXPECT_FALSE(proxy.Evaluate(prices).Active());
}

TEST(VectorLimitsTest, ProxyMatchesScalarWhenLimitsUniform) {
  const std::vector<Bundle> bundles = {Bundle({{0, 2.0}}),
                                       Bundle({{1, 2.0}})};
  const Bid vector_bid = VectorBid(0, bundles, {12.0, 12.0});
  Bid scalar_bid;
  scalar_bid.user = 1;
  scalar_bid.bundles = bundles;
  scalar_bid.limit = 12.0;
  auction::BidderProxy vp(&vector_bid);
  auction::BidderProxy sp(&scalar_bid);
  for (const std::vector<double> prices :
       {std::vector<double>{1.0, 2.0}, std::vector<double>{9.0, 5.0},
        std::vector<double>{7.0, 7.0}}) {
    const auto vd = vp.Evaluate(prices);
    const auto sd = sp.Evaluate(prices);
    EXPECT_EQ(vd.bundle_index, sd.bundle_index);
    EXPECT_EQ(vd.Active(), sd.Active());
  }
}

TEST(VectorLimitsTest, ClockAuctionOutcomeIsSystemFeasible) {
  // A flexible bidder with per-bundle limits next to a pool-0-only
  // rival. The proxy always takes the cheapest *affordable* alternative,
  // so as pool 0 heats up the vector bidder flexes to pool 1 and both
  // win — a SYSTEM-feasible outcome under the vector-π reading of
  // constraints (4)/(5).
  std::vector<Bid> bids;
  bids.push_back(VectorBid(0, {Bundle({{0, 1.0}}), Bundle({{1, 1.0}})},
                           {50.0, 5.0}));
  Bid rival;
  rival.user = 1;
  rival.name = "rival";
  rival.bundles = {Bundle({{0, 1.0}})};
  rival.limit = 20.0;
  bids.push_back(std::move(rival));

  ClockAuction auction(bids, {1.0, 1.0}, {1.0, 1.0});
  const ClockAuctionResult r = auction.Run(FastConfig());
  ASSERT_TRUE(r.converged);
  const auction::SystemCheckResult check =
      CheckSystemConstraints(auction, r);
  EXPECT_TRUE(check.Feasible()) << check.ToString();
  ASSERT_TRUE(r.decisions[0].Active());
  ASSERT_TRUE(r.decisions[1].Active());
  EXPECT_EQ(r.decisions[0].bundle_index, 1);  // Flexed to pool 1.
  EXPECT_EQ(r.decisions[1].bundle_index, 0);
}

TEST(VectorLimitsTest, SettlementPremiumUsesAwardedBundleLimit) {
  std::vector<Bid> bids = {
      VectorBid(0, {Bundle({{0, 4.0}}), Bundle({{1, 4.0}})},
                {50.0, 30.0})};
  ClockAuction auction(bids, {10.0, 10.0}, {2.5, 1.0});
  const ClockAuctionResult r = auction.Run(FastConfig());
  const auction::Settlement s = Settle(auction, r);
  ASSERT_EQ(s.awards.size(), 1u);
  EXPECT_EQ(s.awards[0].bundle_index, 1);  // Pool 1 cheaper (4·1 = 4).
  // Premium against the *awarded* bundle's limit 30: |30−4|/4 = 6.5.
  EXPECT_NEAR(s.awards[0].premium, 6.5, 1e-9);
}

TEST(VectorLimitsTest, WdpUsesPerBundleValues) {
  std::vector<Bid> bids = {
      VectorBid(0, {Bundle({{0, 1.0}}), Bundle({{1, 1.0}})},
                {3.0, 9.0})};
  const auction::WdpResult r =
      auction::SolveWdpExact(bids, {1.0, 1.0});
  EXPECT_EQ(r.chosen[0], 1);  // The 9-valued bundle wins the objective.
  EXPECT_DOUBLE_EQ(r.total_surplus, 9.0);
}

TEST(VectorLimitsTest, GreedyChargesAwardedBundleLimit) {
  std::vector<Bid> bids = {
      VectorBid(0, {Bundle({{0, 5.0}}), Bundle({{1, 1.0}})},
                {100.0, 8.0})};
  // Pool 0 lacks supply: greedy falls through to bundle 1 and charges
  // its limit.
  const auction::GreedyResult r =
      auction::SolveGreedy(bids, {1.0, 1.0});
  EXPECT_EQ(r.chosen[0], 1);
  EXPECT_DOUBLE_EQ(r.operator_revenue, 8.0);
}

// -------------------------------------------------------------- price caps --

TEST(PriceCapsTest, NonBindingCapChangesNothing) {
  std::vector<Bid> bids;
  Bid a;
  a.user = 0;
  a.bundles = {Bundle({{0, 1.0}})};
  a.limit = 9.0;
  Bid b = a;
  b.user = 1;
  b.limit = 7.0;
  bids = {a, b};
  ClockAuction auction(bids, {1.0}, {1.0});
  const ClockAuctionResult plain = auction.Run(FastConfig());
  ClockAuctionConfig capped = FastConfig();
  capped.price_caps = {1000.0};
  const ClockAuctionResult with_cap = auction.Run(capped);
  ASSERT_TRUE(plain.converged && with_cap.converged);
  EXPECT_EQ(plain.prices, with_cap.prices);
  EXPECT_TRUE(with_cap.capped_pools.empty());
}

TEST(PriceCapsTest, BindingCapStopsBelowClearing) {
  std::vector<Bid> bids;
  for (UserId u = 0; u < 2; ++u) {
    Bid b;
    b.user = u;
    b.name = "u" + std::to_string(u);
    b.bundles = {Bundle({{0, 1.0}})};
    b.limit = 100.0;  // Both would pay up to 100 for the single unit.
    bids.push_back(std::move(b));
  }
  ClockAuction auction(bids, {1.0}, {1.0});
  ClockAuctionConfig config = FastConfig();
  config.price_caps = {5.0};
  const ClockAuctionResult r = auction.Run(config);
  EXPECT_FALSE(r.converged);
  ASSERT_EQ(r.capped_pools.size(), 1u);
  EXPECT_EQ(r.capped_pools[0], 0u);
  EXPECT_LE(r.prices[0], 5.0 + 1e-9);
  // Both proxies still demand at the cap: rationing is left to the
  // caller, as §III.B warns ("reduce the size of the feasible region").
  EXPECT_TRUE(r.decisions[0].Active());
  EXPECT_TRUE(r.decisions[1].Active());
}

TEST(PriceCapsTest, OtherPoolsStillClearAroundCappedOne) {
  std::vector<Bid> bids;
  for (UserId u = 0; u < 2; ++u) {
    Bid hot;
    hot.user = u;
    hot.bundles = {Bundle({{0, 1.0}})};
    hot.limit = 100.0;
    bids.push_back(std::move(hot));
  }
  Bid cold;
  cold.user = 2;
  cold.bundles = {Bundle({{1, 1.0}})};
  cold.limit = 3.0;
  bids.push_back(std::move(cold));
  Bid rival;
  rival.user = 3;
  rival.bundles = {Bundle({{1, 1.0}})};
  rival.limit = 6.0;
  bids.push_back(std::move(rival));

  ClockAuction auction(bids, {1.0, 1.0}, {1.0, 1.0});
  ClockAuctionConfig config = FastConfig();
  config.price_caps = {4.0, 1000.0};
  const ClockAuctionResult r = auction.Run(config);
  EXPECT_FALSE(r.converged);  // Pool 0 pinned.
  ASSERT_EQ(r.capped_pools.size(), 1u);
  EXPECT_EQ(r.capped_pools[0], 0u);
  // Pool 1 cleared normally: the 3-limit bidder must be out.
  EXPECT_GT(r.prices[1], 3.0);
  EXPECT_FALSE(r.decisions[2].Active());
  EXPECT_TRUE(r.decisions[3].Active());
}

TEST(PriceCapsTest, CapBelowReserveThrows) {
  std::vector<Bid> bids;
  Bid b;
  b.user = 0;
  b.bundles = {Bundle({{0, 1.0}})};
  b.limit = 5.0;
  bids.push_back(std::move(b));
  ClockAuction auction(bids, {1.0}, {2.0});
  ClockAuctionConfig config = FastConfig();
  config.price_caps = {1.0};  // Below the reserve of 2.
  EXPECT_THROW(auction.Run(config), CheckFailure);
}

TEST(PriceCapsTest, WrongCapAritiesThrow) {
  std::vector<Bid> bids;
  Bid b;
  b.user = 0;
  b.bundles = {Bundle({{0, 1.0}})};
  b.limit = 5.0;
  bids.push_back(std::move(b));
  ClockAuction auction(bids, {1.0}, {1.0});
  ClockAuctionConfig config = FastConfig();
  config.price_caps = {10.0, 10.0};
  EXPECT_THROW(auction.Run(config), CheckFailure);
}

// ---------------------------------------------- extension interactions --

TEST(ExtensionInteractionTest, VectorLimitsUnderPriceCaps) {
  // A vector bidder whose preferred pool pins at its cap while the
  // alternative stays open: the proxy flexes, the auction clears.
  std::vector<Bid> bids;
  bids.push_back(VectorBid(0, {Bundle({{0, 1.0}}), Bundle({{1, 1.0}})},
                           {100.0, 100.0}));
  for (UserId u = 1; u <= 2; ++u) {
    Bid hog;
    hog.user = u;
    hog.name = "hog" + std::to_string(u);
    hog.bundles = {Bundle({{0, 1.5}})};  // Hogs alone exceed supply.
    hog.limit = 500.0;
    bids.push_back(std::move(hog));
  }
  // Pool 0: 2 units vs 3 demanded by the hogs, capped at 3.0 → pinned.
  // Pool 1: ample.
  ClockAuction auction(bids, {2.0, 5.0}, {1.0, 1.0});
  ClockAuctionConfig config = FastConfig();
  config.price_caps = {3.0, 1000.0};
  const ClockAuctionResult r = auction.Run(config);
  EXPECT_FALSE(r.converged);
  ASSERT_EQ(r.capped_pools.size(), 1u);
  EXPECT_EQ(r.capped_pools[0], 0u);
  // The flexible bidder escaped to pool 1 once pool 0 got pricier.
  ASSERT_TRUE(r.decisions[0].Active());
  EXPECT_EQ(r.decisions[0].bundle_index, 1);
}

TEST(ExtensionInteractionTest, BisectionWithVectorLimits) {
  std::vector<Bid> bids;
  bids.push_back(VectorBid(0, {Bundle({{0, 1.0}})}, {50.0}));
  bids.push_back(VectorBid(1, {Bundle({{0, 1.0}})}, {30.0}));
  ClockAuction auction(bids, {1.0}, {1.0});
  ClockAuctionConfig config = FastConfig();
  config.delta = 4.0;
  config.policy_kind = ClockAuctionConfig::PolicyKind::kCapped;
  config.alpha = 2.0;
  config.intra_round_bisection = true;
  const ClockAuctionResult r = auction.Run(config);
  ASSERT_TRUE(r.converged);
  // Price lands just above the marginal vector limit of 30.
  EXPECT_GT(r.prices[0], 30.0 - 1e-6);
  EXPECT_LT(r.prices[0], 34.5);
  // Bisection converges onto the marginal bidder's limit, so audit with
  // a tolerance matching the proxy epsilon — at the coarser default the
  // knife-edge loser "could still afford" within tolerance (the §III.B
  // tie discussion, materialized).
  const auction::SystemCheckResult check =
      CheckSystemConstraints(auction, r, /*tolerance=*/1e-9);
  EXPECT_TRUE(check.Feasible()) << check.ToString();
}

TEST(ExtensionInteractionTest, CapsComposeWithSellers) {
  // A seller keeps the capped pool partially served: the cap binds on
  // the *residual* demand only.
  std::vector<Bid> bids;
  Bid buyer1;
  buyer1.user = 0;
  buyer1.name = "b1";
  buyer1.bundles = {Bundle({{0, 2.0}})};
  buyer1.limit = 1000.0;
  Bid buyer2 = buyer1;
  buyer2.user = 1;
  buyer2.name = "b2";
  Bid seller;
  seller.user = 2;
  seller.name = "s";
  seller.bundles = {Bundle({{0, -2.0}})};
  seller.limit = -1.0;
  bids = {buyer1, buyer2, seller};
  // Supply 0 + seller's 2: only one buyer can be served; cap below the
  // tie-break point keeps both in → capped.
  ClockAuction auction(bids, {0.0}, {1.0});
  ClockAuctionConfig config = FastConfig();
  config.price_caps = {4.0};
  const ClockAuctionResult r = auction.Run(config);
  EXPECT_FALSE(r.converged);
  ASSERT_EQ(r.capped_pools.size(), 1u);
  // The seller is glad to sell at the cap.
  EXPECT_TRUE(r.decisions[2].Active());
}

// --------------------------------------------------------- capacity advice --

exchange::AuctionReport ReportWith(double hot_ratio, double hot_util,
                                   double cold_ratio, double cold_util) {
  exchange::AuctionReport report;
  report.fixed_prices = {10.0, 10.0};
  report.settled_prices = {10.0 * hot_ratio, 10.0 * cold_ratio};
  report.pre_utilization = {hot_util, cold_util};
  return report;
}

TEST(CapacityAdviceTest, FlagsHotAndColdPools) {
  PoolRegistry registry;
  registry.Intern("hot", ResourceKind::kCpu);
  registry.Intern("cold", ResourceKind::kCpu);
  std::vector<exchange::AuctionReport> history = {
      ReportWith(1.8, 0.9, 0.5, 0.1),
      ReportWith(1.6, 0.85, 0.6, 0.15),
      ReportWith(1.9, 0.92, 0.55, 0.12),
  };
  const auto advice = exchange::AdviseCapacity(history, registry);
  ASSERT_EQ(advice.size(), 2u);
  EXPECT_EQ(advice[0].action, exchange::CapacityAction::kExpand);
  EXPECT_EQ(advice[0].pool, 0u);
  EXPECT_NEAR(advice[0].mean_price_ratio, (1.8 + 1.6 + 1.9) / 3, 1e-9);
  EXPECT_EQ(advice[1].action, exchange::CapacityAction::kRepurpose);
  EXPECT_EQ(advice[1].pool, 1u);
}

TEST(CapacityAdviceTest, BalancedPoolsGetNoAdvice) {
  PoolRegistry registry;
  registry.Intern("a", ResourceKind::kCpu);
  registry.Intern("b", ResourceKind::kCpu);
  std::vector<exchange::AuctionReport> history = {
      ReportWith(1.05, 0.5, 0.95, 0.45)};
  EXPECT_TRUE(exchange::AdviseCapacity(history, registry).empty());
}

TEST(CapacityAdviceTest, WindowLimitsLookback) {
  PoolRegistry registry;
  registry.Intern("a", ResourceKind::kCpu);
  registry.Intern("b", ResourceKind::kCpu);
  // Old reports scream "expand"; the recent window is calm.
  std::vector<exchange::AuctionReport> history = {
      ReportWith(3.0, 0.95, 1.0, 0.5), ReportWith(3.0, 0.95, 1.0, 0.5),
      ReportWith(1.0, 0.5, 1.0, 0.5), ReportWith(1.0, 0.5, 1.0, 0.5),
      ReportWith(1.0, 0.5, 1.0, 0.5)};
  exchange::AdvicePolicy policy;
  policy.window = 3;
  EXPECT_TRUE(exchange::AdviseCapacity(history, registry, policy).empty());
}

TEST(CapacityAdviceTest, EmptyHistoryYieldsNothing) {
  PoolRegistry registry;
  registry.Intern("a", ResourceKind::kCpu);
  EXPECT_TRUE(exchange::AdviseCapacity({}, registry).empty());
}

TEST(CapacityAdviceTest, ExpansionSortedBySeverity) {
  PoolRegistry registry;
  registry.Intern("warm", ResourceKind::kCpu);
  registry.Intern("hotter", ResourceKind::kCpu);
  exchange::AuctionReport report;
  report.fixed_prices = {10.0, 10.0};
  report.settled_prices = {14.0, 19.0};
  report.pre_utilization = {0.8, 0.9};
  const auto advice = exchange::AdviseCapacity({report}, registry);
  ASSERT_EQ(advice.size(), 2u);
  EXPECT_EQ(advice[0].pool, 1u);  // 1.9x before 1.4x.
  EXPECT_EQ(advice[1].pool, 0u);
}

TEST(CapacityAdviceTest, RenderListsPoolsAndActions) {
  PoolRegistry registry;
  registry.Intern("hot", ResourceKind::kRam);
  exchange::AuctionReport report;
  report.fixed_prices = {1.0};
  report.settled_prices = {2.0};
  report.pre_utilization = {0.9};
  const auto advice = exchange::AdviseCapacity({report}, registry);
  const std::string out =
      exchange::RenderCapacityAdvice(advice, registry);
  EXPECT_NE(out.find("ram@hot"), std::string::npos);
  EXPECT_NE(out.find("expand"), std::string::npos);
  EXPECT_NE(exchange::RenderCapacityAdvice({}, registry).find("no action"),
            std::string::npos);
}

}  // namespace
}  // namespace pm
