// Tests for pm::cluster: machines, placement policies, clusters, fleet.
#include <gtest/gtest.h>

#include "cluster/fleet.h"
#include "common/check.h"

namespace pm::cluster {
namespace {

const TaskShape kMachine{16.0, 64.0, 8.0};

// ---------------------------------------------------------------- shapes --

TEST(TaskShapeTest, ComponentAccess) {
  TaskShape s{1.0, 2.0, 3.0};
  EXPECT_EQ(s.Of(ResourceKind::kCpu), 1.0);
  EXPECT_EQ(s.Of(ResourceKind::kRam), 2.0);
  EXPECT_EQ(s.Of(ResourceKind::kDisk), 3.0);
  s.Of(ResourceKind::kRam) = 9.0;
  EXPECT_EQ(s.ram_gb, 9.0);
}

TEST(TaskShapeTest, ArithmeticAndScaling) {
  const TaskShape a{1.0, 2.0, 3.0};
  const TaskShape b{0.5, 0.5, 0.5};
  EXPECT_EQ((a + b).cpu, 1.5);
  EXPECT_EQ((a - b).disk_tb, 2.5);
  EXPECT_EQ((a * 2.0).ram_gb, 4.0);
}

TEST(TaskShapeTest, FitsIsComponentWise) {
  const TaskShape big{4.0, 4.0, 4.0};
  EXPECT_TRUE(big.Fits({4.0, 4.0, 4.0}));
  EXPECT_TRUE(big.Fits({1.0, 1.0, 1.0}));
  EXPECT_FALSE(big.Fits({5.0, 1.0, 1.0}));
  EXPECT_FALSE(big.Fits({1.0, 1.0, 4.1}));
}

TEST(JobTest, TotalDemandScalesByTasks) {
  Job job;
  job.shape = {2.0, 8.0, 1.0};
  job.tasks = 5;
  EXPECT_EQ(job.TotalDemand().cpu, 10.0);
  EXPECT_EQ(job.TotalDemand().ram_gb, 40.0);
}

// --------------------------------------------------------------- machines --

TEST(MachineTest, PlaceAndRemoveTracksUsage) {
  Machine m(kMachine);
  const TaskShape task{4.0, 16.0, 2.0};
  EXPECT_TRUE(m.CanFit(task));
  m.Place(task);
  EXPECT_EQ(m.used().cpu, 4.0);
  EXPECT_EQ(m.Free().cpu, 12.0);
  m.Remove(task);
  EXPECT_EQ(m.used().cpu, 0.0);
}

TEST(MachineTest, CannotOverfill) {
  Machine m(kMachine);
  const TaskShape task{10.0, 10.0, 1.0};
  m.Place(task);
  EXPECT_FALSE(m.CanFit(task));  // 20 > 16 cpu.
  EXPECT_THROW(m.Place(task), CheckFailure);
}

TEST(MachineTest, FitIsPerDimension) {
  Machine m(kMachine);
  m.Place({1.0, 60.0, 1.0});
  EXPECT_FALSE(m.CanFit({1.0, 8.0, 1.0}));  // RAM binds.
  EXPECT_TRUE(m.CanFit({1.0, 4.0, 1.0}));
}

TEST(MachineTest, UtilizationPerKind) {
  Machine m(kMachine);
  m.Place({8.0, 16.0, 2.0});
  EXPECT_DOUBLE_EQ(m.Utilization(ResourceKind::kCpu), 0.5);
  EXPECT_DOUBLE_EQ(m.Utilization(ResourceKind::kRam), 0.25);
  EXPECT_DOUBLE_EQ(m.Utilization(ResourceKind::kDisk), 0.25);
}

TEST(MachineTest, RemoveUnplacedThrows) {
  Machine m(kMachine);
  EXPECT_THROW(m.Remove({4.0, 4.0, 4.0}), CheckFailure);
}

TEST(MachineTest, FillAfterIsMaxDimension) {
  Machine m(kMachine);
  EXPECT_DOUBLE_EQ(m.FillAfter({8.0, 16.0, 1.0}), 0.5);  // cpu 8/16.
}

// -------------------------------------------------------------- scheduler --

std::vector<Machine> ThreeMachines() {
  return {Machine(kMachine), Machine(kMachine), Machine(kMachine)};
}

TEST(SchedulerTest, FirstFitPicksLowestIndex) {
  auto machines = ThreeMachines();
  const PlacementResult r =
      PlaceTasks(machines, {4.0, 4.0, 1.0}, 2, PlacementPolicy::kFirstFit);
  EXPECT_TRUE(r.Complete());
  EXPECT_EQ(r.tasks_placed[0], 2);
  EXPECT_EQ(r.tasks_placed[1], 0);
}

TEST(SchedulerTest, WorstFitSpreadsLoad) {
  auto machines = ThreeMachines();
  const PlacementResult r =
      PlaceTasks(machines, {4.0, 4.0, 1.0}, 3, PlacementPolicy::kWorstFit);
  EXPECT_TRUE(r.Complete());
  EXPECT_EQ(r.tasks_placed, (std::vector<int>{1, 1, 1}));
}

TEST(SchedulerTest, BestFitPacksTightly) {
  auto machines = ThreeMachines();
  machines[1].Place({12.0, 12.0, 1.0});  // Machine 1 is nearly full.
  const PlacementResult r =
      PlaceTasks(machines, {4.0, 4.0, 1.0}, 1, PlacementPolicy::kBestFit);
  EXPECT_TRUE(r.Complete());
  EXPECT_EQ(r.tasks_placed[1], 1);  // Fills the tight machine first.
}

TEST(SchedulerTest, ReportsFailuresWhenFull) {
  std::vector<Machine> machines = {Machine({4.0, 4.0, 4.0})};
  const PlacementResult r =
      PlaceTasks(machines, {3.0, 1.0, 1.0}, 3, PlacementPolicy::kFirstFit);
  EXPECT_FALSE(r.Complete());
  EXPECT_EQ(r.TotalPlaced(), 1);
  EXPECT_EQ(r.tasks_failed, 2);
}

TEST(SchedulerTest, UndoRestoresState) {
  auto machines = ThreeMachines();
  const TaskShape task{4.0, 4.0, 1.0};
  const PlacementResult r =
      PlaceTasks(machines, task, 5, PlacementPolicy::kWorstFit);
  UndoPlacement(machines, task, r);
  for (const Machine& m : machines) {
    EXPECT_EQ(m.used().cpu, 0.0);
  }
}

TEST(SchedulerTest, PolicyNames) {
  EXPECT_EQ(ToString(PlacementPolicy::kFirstFit), "first-fit");
  EXPECT_EQ(ToString(PlacementPolicy::kBestFit), "best-fit");
  EXPECT_EQ(ToString(PlacementPolicy::kWorstFit), "worst-fit");
}

// ---------------------------------------------------------------- cluster --

Job MakeJob(JobId id, const std::string& team, int tasks = 4) {
  Job job;
  job.id = id;
  job.team = team;
  job.shape = {2.0, 8.0, 1.0};
  job.tasks = tasks;
  return job;
}

TEST(ClusterTest, HomogeneousConstruction) {
  const Cluster c = Cluster::Homogeneous("c1", 5, kMachine);
  EXPECT_EQ(c.NumMachines(), 5u);
  EXPECT_EQ(c.Capacity(ResourceKind::kCpu), 80.0);
  EXPECT_EQ(c.Used(ResourceKind::kCpu), 0.0);
}

TEST(ClusterTest, AddJobIsAtomic) {
  Cluster c = Cluster::Homogeneous("c1", 1, {8.0, 32.0, 4.0});
  // 5 tasks of 2 cpu = 10 cpu > 8: must fail and leave no residue.
  EXPECT_FALSE(c.AddJob(MakeJob(1, "t", 5), PlacementPolicy::kFirstFit));
  EXPECT_EQ(c.Used(ResourceKind::kCpu), 0.0);
  EXPECT_FALSE(c.HasJob(1));
}

TEST(ClusterTest, AddRemoveRoundTrip) {
  Cluster c = Cluster::Homogeneous("c1", 4, kMachine);
  EXPECT_TRUE(c.AddJob(MakeJob(7, "team-a"), PlacementPolicy::kBestFit));
  EXPECT_TRUE(c.HasJob(7));
  EXPECT_EQ(c.Used(ResourceKind::kCpu), 8.0);
  const auto job = c.RemoveJob(7);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->team, "team-a");
  EXPECT_EQ(c.Used(ResourceKind::kCpu), 0.0);
}

TEST(ClusterTest, RemoveUnknownJobReturnsNullopt) {
  Cluster c = Cluster::Homogeneous("c1", 1, kMachine);
  EXPECT_FALSE(c.RemoveJob(42).has_value());
}

TEST(ClusterTest, DuplicateJobIdThrows) {
  Cluster c = Cluster::Homogeneous("c1", 4, kMachine);
  ASSERT_TRUE(c.AddJob(MakeJob(1, "a"), PlacementPolicy::kFirstFit));
  EXPECT_THROW(c.AddJob(MakeJob(1, "b"), PlacementPolicy::kFirstFit),
               CheckFailure);
}

TEST(ClusterTest, JobIdsInInsertionOrder) {
  Cluster c = Cluster::Homogeneous("c1", 8, kMachine);
  for (JobId id : {5, 2, 9}) {
    ASSERT_TRUE(c.AddJob(MakeJob(id, "t", 1), PlacementPolicy::kBestFit));
  }
  EXPECT_EQ(c.JobIds(), (std::vector<JobId>{5, 2, 9}));
}

TEST(ClusterTest, UtilizationAggregatesMachines) {
  Cluster c = Cluster::Homogeneous("c1", 2, kMachine);
  ASSERT_TRUE(c.AddJob(MakeJob(1, "t", 4), PlacementPolicy::kWorstFit));
  // 8 cpu over 32 capacity.
  EXPECT_DOUBLE_EQ(c.Utilization(ResourceKind::kCpu), 0.25);
  EXPECT_DOUBLE_EQ(c.MaxUtilization(),
                   c.Utilization(ResourceKind::kRam));  // RAM dominates.
}

TEST(ClusterTest, CanFitDoesNotMutate) {
  Cluster c = Cluster::Homogeneous("c1", 1, kMachine);
  EXPECT_TRUE(c.CanFit(MakeJob(1, "t", 2), PlacementPolicy::kBestFit));
  EXPECT_EQ(c.Used(ResourceKind::kCpu), 0.0);
}

// ------------------------------------------------------------------ fleet --

Fleet MakeFleet() {
  std::vector<Cluster> clusters;
  clusters.push_back(Cluster::Homogeneous("a", 2, kMachine));
  clusters.push_back(Cluster::Homogeneous("b", 4, kMachine));
  return Fleet(std::move(clusters), TaskShape{10.0, 1.5, 0.8});
}

TEST(FleetTest, RegistryHasPoolPerClusterKind) {
  const Fleet fleet = MakeFleet();
  EXPECT_EQ(fleet.NumPools(), 6u);
  EXPECT_EQ(fleet.ClusterNames(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(
      fleet.registry().Find(PoolKey{"b", ResourceKind::kDisk}).has_value());
}

TEST(FleetTest, DuplicateClusterNamesThrow) {
  std::vector<Cluster> clusters;
  clusters.push_back(Cluster::Homogeneous("x", 1, kMachine));
  clusters.push_back(Cluster::Homogeneous("x", 1, kMachine));
  EXPECT_THROW(Fleet(std::move(clusters), TaskShape{1, 1, 1}),
               CheckFailure);
}

TEST(FleetTest, VectorsAreConsistent) {
  Fleet fleet = MakeFleet();
  ASSERT_TRUE(fleet.AddJob("a", MakeJob(1, "t", 4)));
  const auto cap = fleet.CapacityVector();
  const auto used = fleet.UsedVector();
  const auto free = fleet.FreeVector();
  const auto util = fleet.UtilizationVector();
  for (std::size_t r = 0; r < cap.size(); ++r) {
    EXPECT_NEAR(free[r], cap[r] - used[r], 1e-9);
    if (cap[r] > 0) EXPECT_NEAR(util[r], used[r] / cap[r], 1e-12);
  }
}

TEST(FleetTest, CostVectorFollowsKind) {
  const Fleet fleet = MakeFleet();
  const auto costs = fleet.CostVector();
  const auto cpu_a = fleet.registry().Find(PoolKey{"a", ResourceKind::kCpu});
  const auto disk_b =
      fleet.registry().Find(PoolKey{"b", ResourceKind::kDisk});
  EXPECT_DOUBLE_EQ(costs[*cpu_a], 10.0);
  EXPECT_DOUBLE_EQ(costs[*disk_b], 0.8);
}

TEST(FleetTest, MoveJobBetweenClusters) {
  Fleet fleet = MakeFleet();
  ASSERT_TRUE(fleet.AddJob("a", MakeJob(1, "t", 4)));
  EXPECT_EQ(fleet.LocateJob(1), "a");
  EXPECT_TRUE(fleet.MoveJob(1, "b"));
  EXPECT_EQ(fleet.LocateJob(1), "b");
  EXPECT_EQ(fleet.ClusterByName("a").Used(ResourceKind::kCpu), 0.0);
}

TEST(FleetTest, MoveJobRevertsWhenDestinationFull) {
  Fleet fleet = MakeFleet();
  ASSERT_TRUE(fleet.AddJob("a", MakeJob(1, "t", 4)));
  // Fill cluster b completely: each 8-task job fills one 16-core
  // machine exactly; b has 4 machines.
  for (JobId id = 10; id < 14; ++id) {
    ASSERT_TRUE(fleet.AddJob("b", MakeJob(id, "filler", 8)));
  }
  EXPECT_FALSE(fleet.MoveJob(1, "b"));
  EXPECT_EQ(fleet.LocateJob(1), "a");  // Restored.
}

TEST(FleetTest, MoveToSameClusterIsNoop) {
  Fleet fleet = MakeFleet();
  ASSERT_TRUE(fleet.AddJob("a", MakeJob(1, "t", 1)));
  EXPECT_TRUE(fleet.MoveJob(1, "a"));
  EXPECT_EQ(fleet.LocateJob(1), "a");
}

TEST(FleetTest, MoveUnknownJobReturnsFalse) {
  Fleet fleet = MakeFleet();
  EXPECT_FALSE(fleet.MoveJob(99, "b"));
}

TEST(FleetTest, RemoveJobSearchesAllClusters) {
  Fleet fleet = MakeFleet();
  ASSERT_TRUE(fleet.AddJob("b", MakeJob(3, "t", 2)));
  const auto removed = fleet.RemoveJob(3);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(fleet.LocateJob(3), "");
}

TEST(FleetTest, AllJobsListsLocations) {
  Fleet fleet = MakeFleet();
  ASSERT_TRUE(fleet.AddJob("a", MakeJob(1, "t", 1)));
  ASSERT_TRUE(fleet.AddJob("b", MakeJob(2, "t", 1)));
  const auto jobs = fleet.AllJobs();
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].cluster, "a");
  EXPECT_EQ(jobs[1].cluster, "b");
}

TEST(FleetTest, FleetUtilizationIsWeightedAverage) {
  Fleet fleet = MakeFleet();
  ASSERT_TRUE(fleet.AddJob("a", MakeJob(1, "t", 4)));  // 8 cpu of 96 total.
  EXPECT_NEAR(fleet.FleetUtilization(ResourceKind::kCpu), 8.0 / 96.0,
              1e-12);
}

TEST(FleetTest, UtilizationPercentileRanksClusters) {
  Fleet fleet = MakeFleet();
  ASSERT_TRUE(fleet.AddJob("a", MakeJob(1, "t", 8)));
  // Cluster a is busier than b: a should rank above b.
  const double pa = fleet.UtilizationPercentile("a", ResourceKind::kCpu);
  const double pb = fleet.UtilizationPercentile("b", ResourceKind::kCpu);
  EXPECT_GT(pa, pb);
  EXPECT_THROW(fleet.UtilizationPercentile("zz", ResourceKind::kCpu),
               CheckFailure);
}

}  // namespace
}  // namespace pm::cluster
